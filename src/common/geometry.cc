#include "common/geometry.h"

#include <cassert>
#include <limits>
#include <sstream>

namespace payless {

int64_t Interval::Width() const {
  if (empty()) return 0;
  // hi - lo + 1 can overflow for domains like [INT64_MIN, INT64_MAX]; detect
  // via unsigned arithmetic and saturate.
  const uint64_t w = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (w >= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(w) + 1;
}

std::string Interval::ToString() const {
  if (empty()) return "[empty]";
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

bool Box::empty() const {
  for (const Interval& iv : dims_) {
    if (iv.empty()) return true;
  }
  return false;
}

bool Box::Contains(const Box& other) const {
  assert(num_dims() == other.num_dims());
  if (other.empty()) return true;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Contains(other.dims_[i])) return false;
  }
  return true;
}

bool Box::Contains(const std::vector<int64_t>& point) const {
  assert(num_dims() == point.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Contains(point[i])) return false;
  }
  return true;
}

bool Box::Overlaps(const Box& other) const {
  assert(num_dims() == other.num_dims());
  if (dims_.empty()) return true;  // zero-dimensional unit regions overlap
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Overlaps(other.dims_[i])) return false;
  }
  return true;
}

Box Box::Intersect(const Box& other) const {
  assert(num_dims() == other.num_dims());
  std::vector<Interval> out;
  out.reserve(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    out.push_back(dims_[i].Intersect(other.dims_[i]));
  }
  return Box(std::move(out));
}

int64_t Box::Volume() const {
  if (empty()) return 0;
  // Multiply with saturation; widths are >= 1 here.
  unsigned __int128 volume = 1;
  const unsigned __int128 kMax =
      static_cast<unsigned __int128>(std::numeric_limits<int64_t>::max());
  for (const Interval& iv : dims_) {
    volume *= static_cast<unsigned __int128>(iv.Width());
    if (volume >= kMax) return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(volume);
}

bool Box::operator==(const Box& other) const {
  if (num_dims() != other.num_dims()) return false;
  if (empty() || other.empty()) return empty() == other.empty();
  return dims_ == other.dims_;
}

std::string Box::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += " x ";
    out += dims_[i].ToString();
  }
  out += "}";
  return out;
}

std::vector<Box> SubtractBox(const Box& a, const Box& b) {
  std::vector<Box> pieces;
  if (a.empty()) return pieces;
  const Box overlap = a.Intersect(b);
  if (overlap.empty()) {
    pieces.push_back(a);
    return pieces;
  }
  // Guillotine cuts: peel off the slab below and above the overlap on each
  // dimension in turn, shrinking the remaining core to the overlap extent.
  Box core = a;
  for (size_t d = 0; d < a.num_dims(); ++d) {
    const Interval& cut = overlap.dim(d);
    const Interval& cur = core.dim(d);
    if (cur.lo < cut.lo) {
      Box below = core;
      below.dim(d) = Interval(cur.lo, cut.lo - 1);
      pieces.push_back(std::move(below));
    }
    if (cur.hi > cut.hi) {
      Box above = core;
      above.dim(d) = Interval(cut.hi + 1, cur.hi);
      pieces.push_back(std::move(above));
    }
    core.dim(d) = cut;
  }
  // `core` now equals `overlap` and is discarded (it lies inside b).
  return pieces;
}

std::vector<Box> SubtractAll(const Box& base, const std::vector<Box>& holes) {
  std::vector<Box> remaining;
  if (!base.empty()) remaining.push_back(base);
  for (const Box& hole : holes) {
    std::vector<Box> next;
    for (const Box& piece : remaining) {
      std::vector<Box> diff = SubtractBox(piece, hole);
      next.insert(next.end(), std::make_move_iterator(diff.begin()),
                  std::make_move_iterator(diff.end()));
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

bool IsCovered(const Box& target, const std::vector<Box>& cover) {
  return SubtractAll(target, cover).empty();
}

}  // namespace payless
