#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace payless {

ZipfDistribution::ZipfDistribution(int64_t n, double z) : n_(n) {
  assert(n >= 1);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), z);
    cdf_[static_cast<size_t>(rank - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->UniformReal(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const size_t idx =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<size_t>(it - cdf_.begin());
  return static_cast<int64_t>(idx) + 1;
}

}  // namespace payless
