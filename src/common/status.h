// Status / Result<T> error handling, in the style of LevelDB/RocksDB.
//
// PayLess modules return Status (or Result<T>) for every operation that can
// fail for a reason the caller may want to react to: SQL syntax errors,
// binding-pattern violations on REST calls, unknown tables, etc. Programming
// errors use assertions instead.
#ifndef PAYLESS_COMMON_STATUS_H_
#define PAYLESS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace payless {

/// Outcome of an operation that can fail with a diagnostic message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kNotSupported,
    kParseError,
    kBindingViolation,
    kInternal,
    // Infrastructure failures of the remote market (the REST boundary can
    // throttle, time out and drop connections; §2's marketplace is a paid
    // service, so these are first-class outcomes, not assertions).
    kUnavailable,        // transient: the call may be retried after backoff
    kDeadlineExceeded,   // a per-call or per-query deadline elapsed
    kResourceExhausted,  // rate-limited / quota; retry after the hinted delay
    // Buyer-side admission control: the tenant's budget governor refused
    // the query (hard cap or sliding-window rate) BEFORE any market call,
    // so a query rejected with this code billed exactly zero transactions.
    // Not retryable by backoff — the budget, not the infrastructure, is the
    // obstacle.
    kBudgetExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status BindingViolation(std::string msg) {
    return Status(Code::kBindingViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(Code::kBudgetExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kNotSupported:
        return "NotSupported";
      case Code::kParseError:
        return "ParseError";
      case Code::kBindingViolation:
        return "BindingViolation";
      case Code::kInternal:
        return "Internal";
      case Code::kUnavailable:
        return "Unavailable";
      case Code::kDeadlineExceeded:
        return "DeadlineExceeded";
      case Code::kResourceExhausted:
        return "ResourceExhausted";
      case Code::kBudgetExceeded:
        return "BudgetExceeded";
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// True for codes a caller may retry after backoff: the failure is a
/// transient property of the infrastructure, not of the request itself.
/// kDeadlineExceeded is deliberately NOT retryable — the time budget that
/// expired belongs to the caller, and retrying cannot un-spend it.
inline bool IsRetryable(Status::Code code) {
  return code == Status::Code::kUnavailable ||
         code == Status::Code::kResourceExhausted;
}

/// A value or an error Status. `value()` asserts on error paths; callers
/// check `ok()` (or use `status()`) first.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace payless

/// Propagates a non-OK Status to the caller (RocksDB-style early return).
#define PAYLESS_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::payless::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // PAYLESS_COMMON_STATUS_H_
