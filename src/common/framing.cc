#include "common/framing.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/binio.h"

namespace payless::common {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path + "': " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("framed write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ static_cast<uint8_t>(data[i])) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string FrameOf(const std::string& payload) {
  std::string frame;
  BinWriter w(&frame);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload));
  frame += payload;
  return frame;
}

FrameReadResult ReadFrames(const std::string& bytes) {
  FrameReadResult result;
  result.total_bytes = static_cast<int64_t>(bytes.size());
  size_t pos = 0;
  while (pos < bytes.size()) {
    BinReader header(bytes.data() + pos, bytes.size() - pos);
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!header.U32(&len) || !header.U32(&crc) || len > kMaxFramePayload ||
        header.remaining() < len) {
      result.torn_tail = true;  // short header, absurd length, short payload
      break;
    }
    const char* payload = bytes.data() + pos + 8;
    if (Crc32(payload, len) != crc) {
      result.torn_tail = true;  // partial or corrupted payload bytes
      break;
    }
    result.payloads.emplace_back(payload, len);
    pos += 8 + len;
  }
  result.valid_bytes = static_cast<int64_t>(pos);
  return result;
}

FrameReadResult ReadFramedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return FrameReadResult{};  // no file yet: empty, un-torn
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadFrames(buffer.str());
}

FramedAppendFile::~FramedAppendFile() { Close(); }

Status FramedAppendFile::Open() {
  if (fd_ >= 0) return Status::OK();
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("framed open", path_);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  size_bytes_ = end < 0 ? 0 : static_cast<int64_t>(end);
  return Status::OK();
}

Status FramedAppendFile::Append(const std::string& payload, bool fsync) {
  PAYLESS_RETURN_IF_ERROR(Open());
  const std::string frame = FrameOf(payload);
  PAYLESS_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size(), path_));
  size_bytes_ += static_cast<int64_t>(frame.size());
  if (fsync && ::fsync(fd_) != 0) return Errno("framed fsync", path_);
  return Status::OK();
}

Status FramedAppendFile::AppendTorn(const std::string& payload,
                                    size_t torn_bytes) {
  PAYLESS_RETURN_IF_ERROR(Open());
  const std::string frame = FrameOf(payload);
  const size_t n = torn_bytes < frame.size() ? torn_bytes : frame.size();
  PAYLESS_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), n, path_));
  size_bytes_ += static_cast<int64_t>(n);
  return Status::OK();
}

Status FramedAppendFile::Reset() {
  Close();
  if (::truncate(path_.c_str(), 0) != 0 && errno != ENOENT) {
    return Errno("framed truncate", path_);
  }
  size_bytes_ = 0;
  return Open();
}

void FramedAppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace payless::common
