// CRC-framed append-only file discipline, shared by every durable log in
// the system (the harvest WAL in src/durability and the workload journal
// in src/obs).
//
// On-disk framing, per record:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// The reader walks frames until the bytes end or a frame fails validation
// (short header, absurd length, short payload, CRC mismatch) — everything
// from the first invalid byte on is a TORN TAIL left by a crash mid-append,
// reported but never applied. A framed file is therefore always
// recoverable: the prefix of intact frames is exactly the durable set.
#ifndef PAYLESS_COMMON_FRAMING_H_
#define PAYLESS_COMMON_FRAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace payless::common {

/// CRC-32 (IEEE, reflected) of a byte span — the frame checksum.
uint32_t Crc32(const char* data, size_t size);
inline uint32_t Crc32(const std::string& s) {
  return Crc32(s.data(), s.size());
}

/// Frames larger than this fail validation outright: a length field beyond
/// it is garbage from a torn header, not a real record.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;  // 1 GiB

/// One payload wrapped in its `[len][crc]` header, ready to append.
std::string FrameOf(const std::string& payload);

/// Everything one pass over a framed byte stream yields.
struct FrameReadResult {
  std::vector<std::string> payloads;  // intact frames, in append order
  bool torn_tail = false;             // stream ends in an invalid frame
  int64_t valid_bytes = 0;            // prefix covered by intact frames
  int64_t total_bytes = 0;            // stream size as read
};

/// Walks every intact frame of an in-memory byte stream.
FrameReadResult ReadFrames(const std::string& bytes);

/// Reads every intact frame of the file at `path`. A missing file is an
/// empty, un-torn stream. Never fails on torn or corrupt content — the
/// torn tail is data about the crash, not an error.
FrameReadResult ReadFramedFile(const std::string& path);

/// Append handle over one framed file. Not thread-safe: callers serialize
/// appends (the durability manager owns the whole harvest path; the
/// workload journal appends under its own mutex).
class FramedAppendFile {
 public:
  explicit FramedAppendFile(std::string path) : path_(std::move(path)) {}
  ~FramedAppendFile();

  FramedAppendFile(const FramedAppendFile&) = delete;
  FramedAppendFile& operator=(const FramedAppendFile&) = delete;

  /// Opens (creating if absent) for append. Idempotent.
  Status Open();

  /// Frames and appends one payload; fsyncs when asked. Size accounting
  /// includes the 8-byte frame header.
  Status Append(const std::string& payload, bool fsync);

  /// Crash-injection path: writes only the first `torn_bytes` bytes of the
  /// frame (header included) and stops — the torn tail a real kill
  /// mid-append leaves behind. Never fsyncs (the process "died").
  Status AppendTorn(const std::string& payload, size_t torn_bytes);

  /// Truncates the file to empty and reopens it.
  Status Reset();

  void Close();

  int64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  int64_t size_bytes_ = 0;
};

}  // namespace payless::common

#endif  // PAYLESS_COMMON_FRAMING_H_
