// Integer-lattice interval / box algebra.
//
// Query footprints, stored REST-call results, histogram buckets and remainder
// queries are all axis-aligned boxes over a table's constrainable attributes.
// Numeric attributes live directly on the int64 lattice (dates as YYYYMMDD,
// ranks, keys); categorical attributes are dictionary-encoded to [0, n).
// All intervals are CLOSED: [lo, hi] contains both endpoints.
#ifndef PAYLESS_COMMON_GEOMETRY_H_
#define PAYLESS_COMMON_GEOMETRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace payless {

/// Closed integer interval [lo, hi]. Empty iff lo > hi.
struct Interval {
  int64_t lo = 0;
  int64_t hi = -1;  // default-constructed interval is empty

  Interval() = default;
  Interval(int64_t l, int64_t h) : lo(l), hi(h) {}

  static Interval Point(int64_t v) { return Interval(v, v); }
  static Interval Empty() { return Interval(0, -1); }

  bool empty() const { return lo > hi; }
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }
  bool Contains(const Interval& other) const {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }
  bool Overlaps(const Interval& other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }

  Interval Intersect(const Interval& other) const {
    return Interval(lo > other.lo ? lo : other.lo,
                    hi < other.hi ? hi : other.hi);
  }

  /// Number of lattice points; 0 when empty. Saturates at INT64_MAX.
  int64_t Width() const;

  bool operator==(const Interval& other) const {
    if (empty() && other.empty()) return true;
    return lo == other.lo && hi == other.hi;
  }

  std::string ToString() const;
};

/// Axis-aligned box: one interval per dimension. A zero-dimensional box is
/// the unit region (non-empty, volume 1) — it arises for tables whose access
/// pattern has no constrainable attribute.
class Box {
 public:
  Box() = default;
  explicit Box(std::vector<Interval> dims) : dims_(std::move(dims)) {}

  size_t num_dims() const { return dims_.size(); }
  const Interval& dim(size_t i) const { return dims_[i]; }
  Interval& dim(size_t i) { return dims_[i]; }
  const std::vector<Interval>& dims() const { return dims_; }

  /// Empty iff any dimension's interval is empty.
  bool empty() const;

  bool Contains(const Box& other) const;
  bool Contains(const std::vector<int64_t>& point) const;
  bool Overlaps(const Box& other) const;

  /// Component-wise intersection (possibly empty).
  Box Intersect(const Box& other) const;

  /// Lattice-point count (product of widths). Saturates at INT64_MAX; 0 when
  /// empty; 1 for a zero-dimensional box.
  int64_t Volume() const;

  bool operator==(const Box& other) const;

  std::string ToString() const;

 private:
  std::vector<Interval> dims_;
};

/// Computes `a \ b` as a set of DISJOINT boxes whose union is exactly the
/// set difference. Returns at most 2*d boxes (guillotine decomposition).
std::vector<Box> SubtractBox(const Box& a, const Box& b);

/// Computes `base \ (union of holes)` as disjoint boxes.
std::vector<Box> SubtractAll(const Box& base, const std::vector<Box>& holes);

/// True iff `cover` jointly contains every lattice point of `target`
/// (i.e. SubtractAll(target, cover) is empty).
bool IsCovered(const Box& target, const std::vector<Box>& cover);

}  // namespace payless

#endif  // PAYLESS_COMMON_GEOMETRY_H_
