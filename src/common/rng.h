// Deterministic randomness for workload generation and experiments.
//
// All stochastic behaviour in PayLess benches flows from a seeded Rng so
// every table/figure regeneration is reproducible run-to-run.
#ifndef PAYLESS_COMMON_RNG_H_
#define PAYLESS_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace payless {

/// Seeded PRNG wrapper (mt19937_64) with the sampling primitives the
/// workload generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Index in [0, n) for container selection.
  size_t Index(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[Index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf(z) sampler over ranks 1..n, used by the TPC-H skew generator
/// (Chaudhuri & Narasayya style, z = 1 in the paper's experiments).
/// Precomputes the CDF once; Sample() is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double z);

  /// Returns a rank in [1, n]; rank 1 is the most frequent.
  int64_t Sample(Rng* rng) const;

  int64_t n() const { return n_; }

 private:
  int64_t n_;
  std::vector<double> cdf_;
};

}  // namespace payless

#endif  // PAYLESS_COMMON_RNG_H_
