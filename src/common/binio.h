// Flat binary serialization for durable state: fixed-width little-endian
// scalars, length-prefixed strings, and the shared Value/Row/Box codecs
// used by the write-ahead log and the snapshot files. Header-only so both
// the stats layer (estimator state) and the durability layer can encode
// without a new link-time dependency.
//
// The format is a same-machine persistence format, not a wire protocol:
// integers are memcpy'd in host byte order (every supported target is
// little-endian) and there is no versioned schema per record — the
// enclosing file carries one format-version byte and readers reject
// anything newer than they understand.
#ifndef PAYLESS_COMMON_BINIO_H_
#define PAYLESS_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "common/value.h"

namespace payless::common {

/// Appends fixed-width scalars and length-prefixed blobs to a string.
class BinWriter {
 public:
  explicit BinWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

  std::string* out_;
};

/// Bounds-checked reader over a byte span. Every accessor returns false
/// (and leaves the output untouched) once the span is exhausted or a
/// length prefix overruns it; `ok()` latches the first failure so callers
/// can decode a whole record and check once.
class BinReader {
 public:
  BinReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinReader(std::string_view s) : BinReader(s.data(), s.size()) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (size_ - pos_ < len) return Fail();
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Raw(void* out, size_t size) {
    if (!ok_ || size_ - pos_ < size) return Fail();
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Shared codecs for the geometry / value types.

inline void WriteValue(BinWriter& w, const Value& v) {
  if (v.is_null()) {
    w.U8(0);
  } else if (v.is_int64()) {
    w.U8(1);
    w.I64(v.AsInt64());
  } else if (v.is_double()) {
    w.U8(2);
    w.F64(v.AsDouble());
  } else {
    w.U8(3);
    w.Str(v.AsString());
  }
}

inline bool ReadValue(BinReader& r, Value* out) {
  uint8_t tag = 0;
  if (!r.U8(&tag)) return false;
  switch (tag) {
    case 0:
      *out = Value::Null();
      return true;
    case 1: {
      int64_t v = 0;
      if (!r.I64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case 2: {
      double v = 0;
      if (!r.F64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case 3: {
      std::string s;
      if (!r.Str(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

inline void WriteRow(BinWriter& w, const Row& row) {
  w.U32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) WriteValue(w, v);
}

inline bool ReadRow(BinReader& r, Row* out) {
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!ReadValue(r, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

inline void WriteBox(BinWriter& w, const Box& box) {
  w.U32(static_cast<uint32_t>(box.num_dims()));
  for (const Interval& dim : box.dims()) {
    w.I64(dim.lo);
    w.I64(dim.hi);
  }
}

inline bool ReadBox(BinReader& r, Box* out) {
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  std::vector<Interval> dims;
  dims.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Interval iv;
    if (!r.I64(&iv.lo) || !r.I64(&iv.hi)) return false;
    dims.push_back(iv);
  }
  *out = Box(std::move(dims));
  return true;
}

}  // namespace payless::common

#endif  // PAYLESS_COMMON_BINIO_H_
