// One-stop experiment setup: generated catalog + hosted market data +
// local tables + instantiated query workload, plus client factories for the
// four systems the evaluation compares (PayLess, PayLess w/o SQR,
// Minimizing Calls, Download All).
#ifndef PAYLESS_WORKLOAD_BUNDLE_H_
#define PAYLESS_WORKLOAD_BUNDLE_H_

#include <memory>

#include "exec/download_all.h"
#include "exec/payless.h"
#include "federation/market_endpoint.h"
#include "market/data_market.h"
#include "workload/queries.h"
#include "workload/tpch.h"
#include "workload/whw.h"

namespace payless::workload {

struct Bundle {
  catalog::Catalog catalog;
  std::map<std::string, std::vector<Row>> local_tables;
  // Seller-side rows, retained so federations can replicate the data.
  std::map<std::string, std::vector<Row>> market_tables;
  std::unique_ptr<market::DataMarket> market;
  std::vector<QueryInstance> queries;
};

/// Real workload (WHW + EHR + ZipMap, templates Q1-Q5), `per_template`
/// instances each, shuffled with `query_seed`.
std::unique_ptr<Bundle> MakeRealBundle(const RealDataOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed);

/// TPC-H (or TPC-H skew when options.zipf > 0) workload with the 20
/// templates.
std::unique_ptr<Bundle> MakeTpchBundle(const TpchOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed);

/// A PayLess client wired to the bundle's market, with local tables loaded.
std::unique_ptr<exec::PayLess> NewPayLessClient(const Bundle& bundle,
                                                exec::PayLessConfig config);

/// Convenience configs for the paper's comparison systems.
exec::PayLessConfig PayLessFullConfig();
exec::PayLessConfig PayLessNoSqrConfig();      // "PayLess w/o SQR"
exec::PayLessConfig MinimizingCallsConfig();   // baseline [27]

/// The "Download All" client, local tables loaded.
std::unique_ptr<exec::DownloadAllClient> NewDownloadAllClient(
    const Bundle& bundle);

/// One seller in a federated overlay built over a bundle's catalog.
struct FederatedEndpointSpec {
  std::string id;
  double price_scale = 1.0;     // price multiplier on non-assigned datasets
  double discount_scale = 0.7;  // price multiplier on assigned datasets
  /// Page-size multiplier on assigned datasets: bigger pages mean fewer
  /// billed transactions for the same rows, so the optimizer's buy-site
  /// choice shows up in transaction counts, not just money.
  double discount_page_scale = 2.0;
  market::FaultProfile fault_profile;
  bool inject_faults = false;
  int64_t simulated_latency_micros = 0;
};

/// N-endpoint federation over the bundle's datasets, every endpoint hosting
/// every table. Dataset d (catalog order) is discounted at endpoint
/// d % specs.size(), so with 2+ endpoints no single market is cheapest for
/// every dataset and cross-market plans genuinely beat single-market ones.
std::unique_ptr<federation::FederatedMarket> MakeFederatedMarket(
    const Bundle& bundle, const std::vector<FederatedEndpointSpec>& specs,
    uint64_t base_seed = 42);

/// A PayLess client routing through `federation` (the bundle market stays
/// the fallback surface for non-query paths), local tables loaded.
std::unique_ptr<exec::PayLess> NewFederatedPayLessClient(
    const Bundle& bundle, federation::FederatedMarket* federation,
    exec::PayLessConfig config);

}  // namespace payless::workload

#endif  // PAYLESS_WORKLOAD_BUNDLE_H_
