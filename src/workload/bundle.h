// One-stop experiment setup: generated catalog + hosted market data +
// local tables + instantiated query workload, plus client factories for the
// four systems the evaluation compares (PayLess, PayLess w/o SQR,
// Minimizing Calls, Download All).
#ifndef PAYLESS_WORKLOAD_BUNDLE_H_
#define PAYLESS_WORKLOAD_BUNDLE_H_

#include <memory>

#include "exec/download_all.h"
#include "exec/payless.h"
#include "market/data_market.h"
#include "workload/queries.h"
#include "workload/tpch.h"
#include "workload/whw.h"

namespace payless::workload {

struct Bundle {
  catalog::Catalog catalog;
  std::map<std::string, std::vector<Row>> local_tables;
  std::unique_ptr<market::DataMarket> market;
  std::vector<QueryInstance> queries;
};

/// Real workload (WHW + EHR + ZipMap, templates Q1-Q5), `per_template`
/// instances each, shuffled with `query_seed`.
std::unique_ptr<Bundle> MakeRealBundle(const RealDataOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed);

/// TPC-H (or TPC-H skew when options.zipf > 0) workload with the 20
/// templates.
std::unique_ptr<Bundle> MakeTpchBundle(const TpchOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed);

/// A PayLess client wired to the bundle's market, with local tables loaded.
std::unique_ptr<exec::PayLess> NewPayLessClient(const Bundle& bundle,
                                                exec::PayLessConfig config);

/// Convenience configs for the paper's comparison systems.
exec::PayLessConfig PayLessFullConfig();
exec::PayLessConfig PayLessNoSqrConfig();      // "PayLess w/o SQR"
exec::PayLessConfig MinimizingCallsConfig();   // baseline [27]

/// The "Download All" client, local tables loaded.
std::unique_ptr<exec::DownloadAllClient> NewDownloadAllClient(
    const Bundle& bundle);

}  // namespace payless::workload

#endif  // PAYLESS_WORKLOAD_BUNDLE_H_
