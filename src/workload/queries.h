// Query templates and instance generation.
//
// Real workload: the five templates of Table 1, instantiated with randomly
// drawn but guaranteed-valid parameters (a valid instance returns non-empty
// results, §5). TPC-H workload: twenty single-block templates in the spirit
// of the TPC-H query set, restricted to the dialect PayLess supports; all
// parametric attributes are free (§5), and the wide date ranges make the
// queries "scan a large portion of data" as the paper notes.
#ifndef PAYLESS_WORKLOAD_QUERIES_H_
#define PAYLESS_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "workload/tpch.h"
#include "workload/whw.h"

namespace payless::workload {

/// One ready-to-run query: template SQL plus instantiated parameters.
struct QueryInstance {
  size_t template_id = 0;
  std::string sql;
  std::vector<Value> params;
};

/// The SQL of the five real-data templates (Table 1), index = template id.
const std::vector<std::string>& RealTemplates();

/// The twenty TPC-H-style templates.
const std::vector<std::string>& TpchTemplates();

/// Generates `per_template` valid instances of every real template and
/// shuffles the whole batch (queries arrive in random order, §5).
std::vector<QueryInstance> MakeRealQueries(const RealData& data,
                                           size_t per_template, Rng* rng);

std::vector<QueryInstance> MakeTpchQueries(const TpchData& data,
                                           size_t per_template, Rng* rng);

}  // namespace payless::workload

#endif  // PAYLESS_WORKLOAD_QUERIES_H_
