#include "workload/queries.h"

#include <algorithm>
#include <cassert>

namespace payless::workload {

const std::vector<std::string>& RealTemplates() {
  // Table 1, verbatim modulo whitespace.
  static const std::vector<std::string> kTemplates = {
      // Q1
      "SELECT * FROM Weather "
      "WHERE Weather.Country = ? AND Weather.Date >= ? AND Weather.Date <= ?",
      // Q2
      "SELECT COUNT(ZipCode) FROM Pollution "
      "WHERE Pollution.Rank >= ? AND Pollution.Rank <= ?",
      // Q3
      "SELECT AVG(Temperature) FROM Station, Weather "
      "WHERE Station.Country = Weather.Country = ? AND Weather.Date >= ? AND "
      "Weather.Date <= ? AND Station.StationID = Weather.StationID "
      "GROUP BY City",
      // Q4
      "SELECT Temperature FROM Station, Weather, ZipMap "
      "WHERE Station.Country = Weather.Country = ? AND ZipMap.ZipCode = ? AND "
      "Weather.Date >= ? AND Weather.Date <= ? AND "
      "Station.StationID = Weather.StationID AND Station.City = ZipMap.City",
      // Q5
      "SELECT * FROM Pollution, Station, Weather, ZipMap "
      "WHERE Station.Country = Weather.Country = ? AND Weather.Date >= ? AND "
      "Weather.Date <= ? AND Pollution.Rank >= ? AND Pollution.Rank <= ? AND "
      "Pollution.ZipCode = ZipMap.ZipCode AND ZipMap.City = Station.City AND "
      "Station.StationID = Weather.StationID",
  };
  return kTemplates;
}

namespace {

/// Inclusive date range of `width` consecutive valid dates starting at a
/// random position.
std::pair<int64_t, int64_t> RandomDateRange(const std::vector<int64_t>& dates,
                                            int64_t width, Rng* rng) {
  assert(!dates.empty());
  width = std::min<int64_t>(width, static_cast<int64_t>(dates.size()));
  const size_t start =
      rng->Index(dates.size() - static_cast<size_t>(width) + 1);
  return {dates[start], dates[start + static_cast<size_t>(width) - 1]};
}

}  // namespace

std::vector<QueryInstance> MakeRealQueries(const RealData& data,
                                           size_t per_template, Rng* rng) {
  const std::vector<std::string>& templates = RealTemplates();
  std::vector<QueryInstance> out;

  // Countries eligible for Q5: they must have a polluted zip whose city
  // hosts at least one weather station (else the join is empty).
  std::vector<std::string> q5_countries;
  for (const auto& [country, pairs] : data.polluted_zips_by_country) {
    for (const auto& [zip, rank] : pairs) {
      (void)rank;
      if (data.cities_with_stations.count(data.city_of_zip.at(zip)) > 0) {
        q5_countries.push_back(country);
        break;
      }
    }
  }
  assert(!q5_countries.empty());

  for (size_t i = 0; i < per_template; ++i) {
    {  // Q1: country + 1-4 week date range
      const std::string& country = data.countries[rng->Index(data.countries.size())];
      const auto [lo, hi] =
          RandomDateRange(data.queryable_dates, rng->Uniform(7, 30), rng);
      out.push_back(QueryInstance{
          0, templates[0], {Value(country), Value(lo), Value(hi)}});
    }
    {  // Q2: rank range (about 2-10% of the rank space)
      const int64_t width =
          std::max<int64_t>(1, rng->Uniform(data.max_rank / 50,
                                            data.max_rank / 10));
      const int64_t lo = rng->Uniform(1, std::max<int64_t>(1, data.max_rank - width));
      out.push_back(QueryInstance{
          1, templates[1], {Value(lo), Value(lo + width)}});
    }
    {  // Q3: country + date range
      const std::string& country = data.countries[rng->Index(data.countries.size())];
      const auto [lo, hi] =
          RandomDateRange(data.queryable_dates, rng->Uniform(7, 30), rng);
      out.push_back(QueryInstance{
          2, templates[2], {Value(country), Value(lo), Value(hi)}});
    }
    {  // Q4: country + zip of a station-bearing city in it + date range
      std::string country;
      int64_t zip = 0;
      while (zip == 0) {
        country = data.countries[rng->Index(data.countries.size())];
        const auto it = data.zips_by_country.find(country);
        if (it == data.zips_by_country.end()) continue;
        std::vector<int64_t> eligible;
        for (const int64_t z : it->second) {
          if (data.cities_with_stations.count(data.city_of_zip.at(z)) > 0) {
            eligible.push_back(z);
          }
        }
        if (eligible.empty()) continue;
        zip = eligible[rng->Index(eligible.size())];
      }
      const auto [lo, hi] =
          RandomDateRange(data.queryable_dates, rng->Uniform(7, 30), rng);
      out.push_back(QueryInstance{
          3, templates[3],
          {Value(country), Value(zip), Value(lo), Value(hi)}});
    }
    {  // Q5: country with a station-bearing polluted zip + date + rank range
      const std::string& country =
          q5_countries[rng->Index(q5_countries.size())];
      const auto& pairs = data.polluted_zips_by_country.at(country);
      int64_t anchor_rank = 0;
      while (anchor_rank == 0) {
        const auto& [zip, rank] = pairs[rng->Index(pairs.size())];
        if (data.cities_with_stations.count(data.city_of_zip.at(zip)) > 0) {
          anchor_rank = rank;
        }
      }
      const int64_t half = std::max<int64_t>(10, data.max_rank / 40);
      const int64_t rank_lo = std::max<int64_t>(1, anchor_rank - half);
      const int64_t rank_hi = std::min(data.max_rank, anchor_rank + half);
      const auto [lo, hi] =
          RandomDateRange(data.queryable_dates, rng->Uniform(7, 30), rng);
      out.push_back(QueryInstance{
          4, templates[4],
          {Value(country), Value(lo), Value(hi), Value(rank_lo),
           Value(rank_hi)}});
    }
  }
  rng->Shuffle(&out);
  return out;
}

const std::vector<std::string>& TpchTemplates() {
  static const std::vector<std::string> kTemplates = {
      // 0: pricing-summary style single-table sweep
      "SELECT COUNT(*) FROM Lineitem "
      "WHERE Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ?",
      // 1
      "SELECT AVG(ExtendedPrice) FROM Lineitem "
      "WHERE Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ?",
      // 2
      "SELECT * FROM Orders "
      "WHERE Orders.OrderDate >= ? AND Orders.OrderDate <= ?",
      // 3: residual predicate on an output-only attribute
      "SELECT COUNT(*) FROM Orders "
      "WHERE Orders.OrderDate >= ? AND Orders.OrderDate <= ? AND "
      "Orders.TotalPrice >= ?",
      // 4: shipping-priority style join
      "SELECT COUNT(*) FROM Customer, Orders "
      "WHERE Customer.CustKey = Orders.CustKey AND Customer.MktSegment = ? "
      "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ?",
      // 5
      "SELECT AVG(TotalPrice) FROM Customer, Orders "
      "WHERE Customer.CustKey = Orders.CustKey AND Customer.MktSegment = ? "
      "AND Orders.OrderDate >= ? AND Orders.OrderDate <= ?",
      // 6: group by nation
      "SELECT Customer.NationKey, COUNT(*) FROM Customer, Orders "
      "WHERE Customer.CustKey = Orders.CustKey AND Orders.OrderDate >= ? AND "
      "Orders.OrderDate <= ? GROUP BY Customer.NationKey",
      // 7: orders joined with their lineitems
      "SELECT COUNT(*) FROM Orders, Lineitem "
      "WHERE Orders.OrderKey = Lineitem.OrderKey AND Orders.OrderDate >= ? "
      "AND Orders.OrderDate <= ? AND Lineitem.ShipDate >= ? AND "
      "Lineitem.ShipDate <= ?",
      // 8: part selection
      "SELECT * FROM Part "
      "WHERE Part.Brand = ? AND Part.PSize >= ? AND Part.PSize <= ?",
      // 9
      "SELECT AVG(RetailPrice) FROM Part "
      "WHERE Part.PSize >= ? AND Part.PSize <= ?",
      // 10: minimum-cost-supplier style
      "SELECT AVG(SupplyCost) FROM PartSupp, Part "
      "WHERE PartSupp.PartKey = Part.PartKey AND Part.Brand = ? AND "
      "Part.PSize >= ? AND Part.PSize <= ?",
      // 11: local Nation steering a market table
      "SELECT COUNT(*) FROM Supplier, Nation "
      "WHERE Supplier.NationKey = Nation.NationKey AND Nation.NName = ?",
      // 12: two local dimension tables
      "SELECT COUNT(*) FROM Supplier, Nation, Region "
      "WHERE Supplier.NationKey = Nation.NationKey AND "
      "Nation.RegionKey = Region.RegionKey AND Region.RName = ?",
      // 13
      "SELECT COUNT(*) FROM Customer, Nation "
      "WHERE Customer.NationKey = Nation.NationKey AND Nation.NName = ? AND "
      "Customer.MktSegment = ?",
      // 14: promotion-effect style
      "SELECT AVG(ExtendedPrice) FROM Lineitem, Part "
      "WHERE Lineitem.PartKey = Part.PartKey AND Part.Brand = ? AND "
      "Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ?",
      // 15: supplier volume by nation
      "SELECT COUNT(*) FROM Lineitem, Supplier, Nation "
      "WHERE Lineitem.SuppKey = Supplier.SuppKey AND "
      "Supplier.NationKey = Nation.NationKey AND Nation.NName = ? AND "
      "Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ?",
      // 16: full customer-by-nation census (parameter free)
      "SELECT Nation.NName, COUNT(*) FROM Customer, Nation "
      "WHERE Customer.NationKey = Nation.NationKey GROUP BY Nation.NName",
      // 17
      "SELECT AVG(CAcctBal) FROM Customer WHERE Customer.MktSegment = ?",
      // 18
      "SELECT COUNT(*) FROM PartSupp, Supplier, Nation "
      "WHERE PartSupp.SuppKey = Supplier.SuppKey AND "
      "Supplier.NationKey = Nation.NationKey AND Nation.NName = ?",
      // 19: market segments by revenue
      "SELECT Customer.MktSegment, AVG(TotalPrice) FROM Customer, Orders "
      "WHERE Customer.CustKey = Orders.CustKey AND Orders.OrderDate >= ? AND "
      "Orders.OrderDate <= ? GROUP BY Customer.MktSegment",
  };
  return kTemplates;
}

std::vector<QueryInstance> MakeTpchQueries(const TpchData& data,
                                           size_t per_template, Rng* rng) {
  const std::vector<std::string>& templates = TpchTemplates();
  std::vector<QueryInstance> out;

  // Wide date ranges: TPC-H queries scan a large portion of the data (§5).
  const auto date_range = [&](int64_t min_width, int64_t max_width) {
    const int64_t width = rng->Uniform(min_width, max_width);
    const int64_t lo = rng->Uniform(0, kTpchDateMax - width);
    return std::pair<int64_t, int64_t>{lo, lo + width};
  };
  const auto segment = [&] {
    return Value(data.segments[rng->Index(data.segments.size())]);
  };
  const auto brand = [&] {
    return Value(data.brands[rng->Index(data.brands.size())]);
  };
  const auto nation = [&] {
    return Value(data.nation_names[rng->Index(data.nation_names.size())]);
  };
  const auto size_range = [&] {
    const int64_t lo = rng->Uniform(1, 40);
    return std::pair<int64_t, int64_t>{lo, lo + rng->Uniform(3, 10)};
  };

  for (size_t i = 0; i < per_template; ++i) {
    for (size_t tid = 0; tid < templates.size(); ++tid) {
      QueryInstance instance;
      instance.template_id = tid;
      instance.sql = templates[tid];
      switch (tid) {
        case 0:
        case 1: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {Value(lo), Value(hi)};
          break;
        }
        case 2: {
          const auto [lo, hi] = date_range(60, 240);
          instance.params = {Value(lo), Value(hi)};
          break;
        }
        case 3: {
          const auto [lo, hi] = date_range(60, 240);
          instance.params = {Value(lo), Value(hi), Value(150000.0)};
          break;
        }
        case 4:
        case 5: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {segment(), Value(lo), Value(hi)};
          break;
        }
        case 6: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {Value(lo), Value(hi)};
          break;
        }
        case 7: {
          const auto [olo, ohi] = date_range(30, 120);
          instance.params = {Value(olo), Value(ohi), Value(olo),
                             Value(std::min(kTpchDateMax, ohi + 122))};
          break;
        }
        case 8: {
          const auto [lo, hi] = size_range();
          instance.params = {brand(), Value(lo), Value(hi)};
          break;
        }
        case 9: {
          const auto [lo, hi] = size_range();
          instance.params = {Value(lo), Value(hi)};
          break;
        }
        case 10: {
          const auto [lo, hi] = size_range();
          instance.params = {brand(), Value(lo), Value(hi)};
          break;
        }
        case 11:
          instance.params = {nation()};
          break;
        case 12:
          instance.params = {Value(std::vector<std::string>{
              "AFRICA", "AMERICA", "ASIA", "EUROPE",
              "MIDDLE EAST"}[rng->Index(5)])};
          break;
        case 13:
          instance.params = {nation(), segment()};
          break;
        case 14: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {brand(), Value(lo), Value(hi)};
          break;
        }
        case 15: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {nation(), Value(lo), Value(hi)};
          break;
        }
        case 16:
          instance.params = {};
          break;
        case 17:
          instance.params = {segment()};
          break;
        case 18:
          instance.params = {nation()};
          break;
        case 19: {
          const auto [lo, hi] = date_range(90, 365);
          instance.params = {Value(lo), Value(hi)};
          break;
        }
        default:
          assert(false);
      }
      out.push_back(std::move(instance));
    }
  }
  rng->Shuffle(&out);
  return out;
}

}  // namespace payless::workload
