#include "workload/tpch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "common/rng.h"

namespace payless::workload {

namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

/// Draws a key in [1, n]: uniform when z == 0, zipf-skewed otherwise. The
/// zipf sampler maps rank r to key ((r * 2654435761) mod n) + 1 so hot keys
/// are scattered over the key space, as in the skewed-dbgen generator.
class KeySampler {
 public:
  KeySampler(int64_t n, double z, Rng* rng) : n_(n), z_(z), rng_(rng) {
    if (z_ > 0.0) zipf_ = std::make_unique<ZipfDistribution>(n, z);
  }

  int64_t Sample() const {
    if (z_ <= 0.0) return rng_->Uniform(1, n_);
    const int64_t rank = zipf_->Sample(rng_);
    const uint64_t scattered =
        static_cast<uint64_t>(rank) * 2654435761ULL % static_cast<uint64_t>(n_);
    return static_cast<int64_t>(scattered) + 1;
  }

 private:
  int64_t n_;
  double z_;
  Rng* rng_;
  std::unique_ptr<ZipfDistribution> zipf_;
};

}  // namespace

TpchData MakeTpchData(const TpchOptions& options) {
  TpchData data;
  Rng rng(options.seed);
  const double sf = options.scale_factor;

  data.num_suppliers = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  data.num_customers =
      std::max<int64_t>(30, static_cast<int64_t>(150000 * sf));
  data.num_parts = std::max<int64_t>(40, static_cast<int64_t>(200000 * sf));
  data.num_orders = std::max<int64_t>(60, static_cast<int64_t>(1500000 * sf));

  data.segments = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                   "MACHINERY"};
  for (int i = 1; i <= 25; ++i) {
    data.brands.push_back("Brand#" + std::to_string(10 + i));
  }
  data.nation_names = {
      "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
      "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",   "INDONESIA",
      "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",  "KENYA",
      "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",   "ROMANIA",
      "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
      "UNITED STATES"};
  const std::vector<std::string> region_names = {"AFRICA", "AMERICA", "ASIA",
                                                 "EUROPE", "MIDDLE EAST"};

  // ---- Catalog.
  Status st = data.catalog.RegisterDataset(
      DatasetDef{"TPCH", options.price_per_transaction,
                 options.tuples_per_transaction});
  assert(st.ok());

  AttrDomain suppkey_domain = AttrDomain::Numeric(1, data.num_suppliers);
  AttrDomain custkey_domain = AttrDomain::Numeric(1, data.num_customers);
  AttrDomain partkey_domain = AttrDomain::Numeric(1, data.num_parts);
  AttrDomain orderkey_domain = AttrDomain::Numeric(1, data.num_orders);
  AttrDomain nationkey_domain = AttrDomain::Numeric(0, 24);
  AttrDomain regionkey_domain = AttrDomain::Numeric(0, 4);
  AttrDomain date_domain = AttrDomain::Numeric(0, kTpchDateMax);
  AttrDomain size_domain = AttrDomain::Numeric(1, 50);
  AttrDomain segment_domain = AttrDomain::Categorical(data.segments);
  AttrDomain brand_domain = AttrDomain::Categorical(data.brands);
  AttrDomain nation_name_domain = AttrDomain::Categorical([&] {
    std::vector<std::string> sorted = data.nation_names;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }());
  AttrDomain region_name_domain = AttrDomain::Categorical(region_names);

  const auto register_table = [&](TableDef def) {
    const Status table_st = data.catalog.RegisterTable(std::move(def));
    assert(table_st.ok());
    (void)table_st;
  };

  {
    TableDef def;
    def.name = "Region";
    def.is_local = true;
    def.columns = {
        ColumnDef::Free("RegionKey", ValueType::kInt64, regionkey_domain),
        ColumnDef::Free("RName", ValueType::kString, region_name_domain)};
    def.cardinality = 5;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Nation";
    def.is_local = true;
    def.columns = {
        ColumnDef::Free("NationKey", ValueType::kInt64, nationkey_domain),
        ColumnDef::Free("NName", ValueType::kString, nation_name_domain),
        ColumnDef::Free("RegionKey", ValueType::kInt64, regionkey_domain)};
    def.cardinality = 25;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Supplier";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("SuppKey", ValueType::kInt64, suppkey_domain),
        ColumnDef::Free("NationKey", ValueType::kInt64, nationkey_domain),
        ColumnDef::Output("SAcctBal", ValueType::kDouble)};
    def.cardinality = data.num_suppliers;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Customer";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("CustKey", ValueType::kInt64, custkey_domain),
        ColumnDef::Free("NationKey", ValueType::kInt64, nationkey_domain),
        ColumnDef::Free("MktSegment", ValueType::kString, segment_domain),
        ColumnDef::Output("CAcctBal", ValueType::kDouble)};
    def.cardinality = data.num_customers;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Part";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("PartKey", ValueType::kInt64, partkey_domain),
        ColumnDef::Free("Brand", ValueType::kString, brand_domain),
        ColumnDef::Free("PSize", ValueType::kInt64, size_domain),
        ColumnDef::Output("RetailPrice", ValueType::kDouble)};
    def.cardinality = data.num_parts;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "PartSupp";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("PartKey", ValueType::kInt64, partkey_domain),
        ColumnDef::Free("SuppKey", ValueType::kInt64, suppkey_domain),
        ColumnDef::Output("SupplyCost", ValueType::kDouble)};
    def.cardinality = data.num_parts * 4;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Orders";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("OrderKey", ValueType::kInt64, orderkey_domain),
        ColumnDef::Free("CustKey", ValueType::kInt64, custkey_domain),
        ColumnDef::Free("OrderDate", ValueType::kInt64, date_domain),
        ColumnDef::Output("TotalPrice", ValueType::kDouble)};
    def.cardinality = data.num_orders;
    register_table(def);
  }
  {
    TableDef def;
    def.name = "Lineitem";
    def.dataset = "TPCH";
    def.columns = {
        ColumnDef::Free("OrderKey", ValueType::kInt64, orderkey_domain),
        ColumnDef::Free("PartKey", ValueType::kInt64, partkey_domain),
        ColumnDef::Free("SuppKey", ValueType::kInt64, suppkey_domain),
        ColumnDef::Free("ShipDate", ValueType::kInt64, date_domain),
        ColumnDef::Output("Quantity", ValueType::kDouble),
        ColumnDef::Output("ExtendedPrice", ValueType::kDouble),
        ColumnDef::Output("Discount", ValueType::kDouble)};
    def.cardinality = data.num_orders * 4;
    register_table(def);
  }

  // ---- Rows.
  std::vector<Row>& region_rows = data.local_tables["Region"];
  for (int64_t r = 0; r < 5; ++r) {
    region_rows.push_back(Row{Value(r), Value(region_names[r])});
  }
  std::vector<Row>& nation_rows = data.local_tables["Nation"];
  for (int64_t nk = 0; nk < 25; ++nk) {
    nation_rows.push_back(
        Row{Value(nk), Value(data.nation_names[nk]), Value(nk % 5)});
  }

  KeySampler nation_sampler(25, options.zipf, &rng);
  std::vector<Row>& supplier_rows = data.market_tables["Supplier"];
  for (int64_t k = 1; k <= data.num_suppliers; ++k) {
    supplier_rows.push_back(Row{Value(k), Value(nation_sampler.Sample() - 1),
                                Value(rng.UniformReal(-999.0, 9999.0))});
  }

  KeySampler segment_sampler(
      static_cast<int64_t>(data.segments.size()), options.zipf, &rng);
  std::vector<Row>& customer_rows = data.market_tables["Customer"];
  for (int64_t k = 1; k <= data.num_customers; ++k) {
    customer_rows.push_back(
        Row{Value(k), Value(nation_sampler.Sample() - 1),
            Value(data.segments[segment_sampler.Sample() - 1]),
            Value(rng.UniformReal(-999.0, 9999.0))});
  }

  KeySampler brand_sampler(25, options.zipf, &rng);
  KeySampler size_sampler(50, options.zipf, &rng);
  std::vector<Row>& part_rows = data.market_tables["Part"];
  for (int64_t k = 1; k <= data.num_parts; ++k) {
    part_rows.push_back(Row{Value(k),
                            Value(data.brands[brand_sampler.Sample() - 1]),
                            Value(size_sampler.Sample()),
                            Value(rng.UniformReal(900.0, 2000.0))});
  }

  KeySampler supp_sampler(data.num_suppliers, options.zipf, &rng);
  std::vector<Row>& partsupp_rows = data.market_tables["PartSupp"];
  for (int64_t pk = 1; pk <= data.num_parts; ++pk) {
    for (int64_t i = 0; i < 4; ++i) {
      partsupp_rows.push_back(Row{Value(pk), Value(supp_sampler.Sample()),
                                  Value(rng.UniformReal(1.0, 1000.0))});
    }
  }

  KeySampler cust_sampler(data.num_customers, options.zipf, &rng);
  KeySampler date_sampler(kTpchDateMax + 1, options.zipf, &rng);
  KeySampler part_sampler(data.num_parts, options.zipf, &rng);
  std::vector<Row>& orders_rows = data.market_tables["Orders"];
  std::vector<Row>& lineitem_rows = data.market_tables["Lineitem"];
  for (int64_t ok = 1; ok <= data.num_orders; ++ok) {
    const int64_t orderdate = date_sampler.Sample() - 1;
    orders_rows.push_back(Row{Value(ok), Value(cust_sampler.Sample()),
                              Value(orderdate),
                              Value(rng.UniformReal(1000.0, 400000.0))});
    const int64_t lines = rng.Uniform(1, 7);
    for (int64_t l = 0; l < lines; ++l) {
      const int64_t shipdate =
          std::min<int64_t>(kTpchDateMax, orderdate + rng.Uniform(1, 121));
      lineitem_rows.push_back(
          Row{Value(ok), Value(part_sampler.Sample()),
              Value(supp_sampler.Sample()), Value(shipdate),
              Value(static_cast<double>(rng.Uniform(1, 50))),
              Value(rng.UniformReal(900.0, 100000.0)),
              Value(rng.UniformReal(0.0, 0.1))});
    }
  }
  const Status card_st = data.catalog.SetCardinality(
      "Lineitem", static_cast<int64_t>(lineitem_rows.size()));
  assert(card_st.ok());
  (void)card_st;

  return data;
}

}  // namespace payless::workload
