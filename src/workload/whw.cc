#include "workload/whw.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace payless::workload {

namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

/// Valid YYYYMMDD dates starting 2011-01-01 (ignoring leap days), in
/// order, truncated to `days`. Multiple years model the paper's WHW depth
/// (19.5M records ~ 13 years of daily data; queries touch weeks of it).
std::vector<int64_t> ValidDates(int64_t days) {
  static const int kMonthLen[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  std::vector<int64_t> dates;
  for (int64_t year = 2011;; ++year) {
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= kMonthLen[month - 1]; ++day) {
        dates.push_back(year * 10000 + month * 100 + day);
        if (static_cast<int64_t>(dates.size()) >= days) return dates;
      }
    }
  }
}

std::vector<std::string> CountryNames(int64_t n) {
  static const char* kNames[] = {
      "United States", "Germany",   "Canada",  "France",   "Japan",
      "Brazil",        "Australia", "India",   "Italy",    "Spain",
      "Mexico",        "Korea",     "Britain", "Russia",   "China",
      "Norway",        "Sweden",    "Poland",  "Chile",    "Egypt",
      "Kenya",         "Peru",      "Turkey",  "Vietnam",  "Greece",
  };
  std::vector<std::string> out;
  for (int64_t i = 0; i < n; ++i) {
    if (i < static_cast<int64_t>(std::size(kNames))) {
      out.emplace_back(kNames[i]);
    } else {
      out.push_back("Country" + std::to_string(i));
    }
  }
  return out;
}

}  // namespace

RealData MakeRealData(const RealDataOptions& options) {
  RealData data;
  Rng rng(options.seed);

  const int64_t total_stations =
      std::max<int64_t>(40, static_cast<int64_t>(3962 * options.scale));
  const int64_t pollution_rows =
      std::max<int64_t>(200, static_cast<int64_t>(44210 * options.scale));
  data.countries = CountryNames(options.num_countries);
  data.valid_dates = ValidDates(options.days);
  {
    const size_t window = static_cast<size_t>(std::min<int64_t>(
        options.query_window_days, static_cast<int64_t>(data.valid_dates.size())));
    data.queryable_dates.assign(data.valid_dates.end() - window,
                                data.valid_dates.end());
  }
  data.max_rank = pollution_rows;

  // ---- Station allocation: the first country ("United States") holds
  // ~20% of all stations (788/3962 in the paper); the rest decays by rank.
  std::vector<int64_t> stations_per_country(data.countries.size(), 0);
  {
    const ZipfDistribution zipf(
        static_cast<int64_t>(data.countries.size()), 0.7);
    stations_per_country[0] = std::max<int64_t>(5, total_stations / 5);
    int64_t assigned = stations_per_country[0];
    for (size_t c = 1; c < data.countries.size(); ++c) {
      stations_per_country[c] = 1;  // every country has a station
      ++assigned;
    }
    while (assigned < total_stations) {
      const size_t c = static_cast<size_t>(zipf.Sample(&rng) - 1);
      ++stations_per_country[c];
      ++assigned;
    }
  }

  // ---- Cities: each country has several, each holding a small share of
  // the country's stations.
  std::vector<std::string> all_cities;
  struct StationInfo {
    int64_t id;
    std::string country;
    std::string city;
    double latitude;
    double longitude;
  };
  std::vector<StationInfo> stations;
  int64_t next_station = 1;
  for (size_t c = 0; c < data.countries.size(); ++c) {
    const std::string& country = data.countries[c];
    const int64_t n = stations_per_country[c];
    const int64_t num_cities = std::max<int64_t>(2, n / 8);
    std::vector<std::string> cities;
    for (int64_t k = 0; k < num_cities; ++k) {
      cities.push_back(country + " City" + std::to_string(k));
      all_cities.push_back(cities.back());
    }
    data.cities_by_country[country] = cities;
    for (int64_t s = 0; s < n; ++s) {
      StationInfo info;
      info.id = next_station++;
      info.country = country;
      info.city = cities[rng.Index(cities.size())];
      info.latitude = rng.UniformReal(-60.0, 70.0);
      info.longitude = rng.UniformReal(-180.0, 180.0);
      data.cities_with_stations.insert(info.city);
      stations.push_back(std::move(info));
    }
  }
  std::sort(all_cities.begin(), all_cities.end());

  // ---- Catalog: datasets, schemas, binding patterns, basic statistics.
  AttrDomain country_domain = AttrDomain::Categorical([&] {
    std::vector<std::string> sorted = data.countries;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }());
  AttrDomain city_domain = AttrDomain::Categorical(all_cities);
  AttrDomain station_domain = AttrDomain::Numeric(1, total_stations);
  AttrDomain date_domain =
      AttrDomain::Numeric(data.valid_dates.front(), data.valid_dates.back());

  Status st = data.catalog.RegisterDataset(
      DatasetDef{"WHW", options.price_per_transaction,
                 options.tuples_per_transaction});
  assert(st.ok());
  st = data.catalog.RegisterDataset(
      DatasetDef{"EHR", options.price_per_transaction,
                 options.tuples_per_transaction});
  assert(st.ok());

  TableDef station_def;
  station_def.name = "Station";
  station_def.dataset = "WHW";
  station_def.columns = {
      ColumnDef::Free("Country", ValueType::kString, country_domain),
      ColumnDef::Free("StationID", ValueType::kInt64, station_domain),
      ColumnDef::Free("City", ValueType::kString, city_domain),
      ColumnDef::Output("State", ValueType::kString),
      ColumnDef::Output("Latitude", ValueType::kDouble),
      ColumnDef::Output("Longitude", ValueType::kDouble),
  };
  station_def.cardinality = total_stations;
  st = data.catalog.RegisterTable(station_def);
  assert(st.ok());

  TableDef weather_def;
  weather_def.name = "Weather";
  weather_def.dataset = "WHW";
  weather_def.columns = {
      ColumnDef::Free("Country", ValueType::kString, country_domain),
      ColumnDef::Free("StationID", ValueType::kInt64, station_domain),
      ColumnDef::Free("Date", ValueType::kInt64, date_domain),
      ColumnDef::Output("Temperature", ValueType::kDouble),
      ColumnDef::Output("Precipitation", ValueType::kDouble),
      ColumnDef::Output("DewPoint", ValueType::kDouble),
      ColumnDef::Output("SeaLevelPressure", ValueType::kDouble),
      ColumnDef::Output("WindSpeed", ValueType::kDouble),
      ColumnDef::Output("WindGust", ValueType::kDouble),
  };
  weather_def.cardinality =
      total_stations * static_cast<int64_t>(data.valid_dates.size());
  st = data.catalog.RegisterTable(weather_def);
  assert(st.ok());

  // Zip codes: a contiguous block, a few per city.
  const int64_t zips_per_city = 3;
  const int64_t num_zips =
      static_cast<int64_t>(all_cities.size()) * zips_per_city;
  const int64_t zip_lo = 10000;
  AttrDomain zip_domain = AttrDomain::Numeric(zip_lo, zip_lo + num_zips - 1);
  AttrDomain rank_domain = AttrDomain::Numeric(1, pollution_rows);

  TableDef pollution_def;
  pollution_def.name = "Pollution";
  pollution_def.dataset = "EHR";
  pollution_def.columns = {
      ColumnDef::Free("ZipCode", ValueType::kInt64, zip_domain),
      ColumnDef::Free("Rank", ValueType::kInt64, rank_domain),
      ColumnDef::Output("Latitude", ValueType::kDouble),
      ColumnDef::Output("Longitude", ValueType::kDouble),
  };
  pollution_def.cardinality = pollution_rows;
  st = data.catalog.RegisterTable(pollution_def);
  assert(st.ok());

  TableDef zipmap_def;
  zipmap_def.name = "ZipMap";
  zipmap_def.is_local = true;
  zipmap_def.columns = {
      ColumnDef::Free("ZipCode", ValueType::kInt64, zip_domain),
      ColumnDef::Free("City", ValueType::kString, city_domain),
  };
  zipmap_def.cardinality = num_zips;
  st = data.catalog.RegisterTable(zipmap_def);
  assert(st.ok());

  // ---- Rows.
  std::vector<Row>& station_rows = data.market_tables["Station"];
  for (const StationInfo& info : stations) {
    station_rows.push_back(Row{Value(info.country), Value(info.id),
                               Value(info.city), Value("ST"),
                               Value(info.latitude), Value(info.longitude)});
  }

  std::vector<Row>& weather_rows = data.market_tables["Weather"];
  weather_rows.reserve(stations.size() * data.valid_dates.size());
  for (const StationInfo& info : stations) {
    const double base_temp = 25.0 - std::abs(info.latitude) * 0.5;
    for (size_t d = 0; d < data.valid_dates.size(); ++d) {
      const double season =
          10.0 * std::sin(2.0 * M_PI * static_cast<double>(d) / 365.0);
      weather_rows.push_back(Row{
          Value(info.country), Value(info.id), Value(data.valid_dates[d]),
          Value(base_temp + season + rng.UniformReal(-5.0, 5.0)),
          Value(std::max(0.0, rng.UniformReal(-5.0, 20.0))),
          Value(base_temp - rng.UniformReal(0.0, 10.0)),
          Value(rng.UniformReal(980.0, 1040.0)),
          Value(rng.UniformReal(0.0, 25.0)),
          Value(rng.UniformReal(0.0, 40.0))});
    }
  }

  // Zip -> city mapping (local table) and the country of each zip.
  std::vector<Row>& zipmap_rows = data.local_tables["ZipMap"];
  std::map<int64_t, std::string> country_of_zip;
  {
    int64_t next_zip = zip_lo;
    for (const auto& [country, cities] : data.cities_by_country) {
      for (const std::string& city : cities) {
        for (int64_t k = 0; k < zips_per_city; ++k) {
          zipmap_rows.push_back(Row{Value(next_zip), Value(city)});
          country_of_zip[next_zip] = country;
          data.zips_by_country[country].push_back(next_zip);
          data.city_of_zip[next_zip] = city;
          ++next_zip;
        }
      }
    }
    assert(next_zip == zip_lo + num_zips);
  }

  std::vector<Row>& pollution_rows_out = data.market_tables["Pollution"];
  for (int64_t rank = 1; rank <= pollution_rows; ++rank) {
    const int64_t zip = zip_lo + rng.Uniform(0, num_zips - 1);
    pollution_rows_out.push_back(Row{Value(zip), Value(rank),
                                     Value(rng.UniformReal(-60.0, 70.0)),
                                     Value(rng.UniformReal(-180.0, 180.0))});
    data.polluted_zips_by_country[country_of_zip[zip]].emplace_back(zip, rank);
  }

  return data;
}

}  // namespace payless::workload
