// From-scratch TPC-H data generator, standing in for the paper's "1G of
// TPC-H data and 1G of TPC-H skew data [19] with zipf = 1".
//
// Eight tables with the standard shape and ratios (per scale factor SF:
// 10k suppliers, 150k customers, 200k parts, 800k partsupps, 1.5M orders,
// ~6M lineitems); Nation and Region are LOCAL tables per the paper's setup,
// everything else is hosted in the market with all parametric attributes
// free. The skewed variant draws foreign keys and dates from a zipf(z)
// distribution in the style of Chaudhuri & Narasayya's skewed dbgen.
// Dates are day indices 0..2404 (1992-01-01 .. 1998-08-02).
#ifndef PAYLESS_WORKLOAD_TPCH_H_
#define PAYLESS_WORKLOAD_TPCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/value.h"

namespace payless::workload {

struct TpchOptions {
  double scale_factor = 0.002;  // SF; 1.0 = the standard 1G dataset
  double zipf = 0.0;            // 0 = uniform TPC-H; 1.0 = TPC-H skew
  uint64_t seed = 7;
  int64_t tuples_per_transaction = 100;
  double price_per_transaction = 1.0;
};

constexpr int64_t kTpchDateMax = 2404;  // day index of 1998-08-02

struct TpchData {
  catalog::Catalog catalog;
  std::map<std::string, std::vector<Row>> market_tables;
  std::map<std::string, std::vector<Row>> local_tables;  // Nation, Region

  int64_t num_suppliers = 0;
  int64_t num_customers = 0;
  int64_t num_parts = 0;
  int64_t num_orders = 0;
  std::vector<std::string> segments;      // MktSegment domain
  std::vector<std::string> brands;        // Brand domain
  std::vector<std::string> nation_names;  // Nation.Name values
};

TpchData MakeTpchData(const TpchOptions& options);

}  // namespace payless::workload

#endif  // PAYLESS_WORKLOAD_TPCH_H_
