#include "workload/bundle.h"

#include <algorithm>
#include <cassert>

namespace payless::workload {

namespace {

std::unique_ptr<Bundle> HostBundle(
    catalog::Catalog catalog,
    std::map<std::string, std::vector<Row>> market_tables,
    std::map<std::string, std::vector<Row>> local_tables,
    std::vector<QueryInstance> queries) {
  auto bundle = std::make_unique<Bundle>();
  bundle->catalog = std::move(catalog);
  bundle->local_tables = std::move(local_tables);
  bundle->market_tables = std::move(market_tables);
  bundle->queries = std::move(queries);
  bundle->market = std::make_unique<market::DataMarket>(&bundle->catalog);
  for (const auto& [name, rows] : bundle->market_tables) {
    const Status st = bundle->market->HostTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return bundle;
}

}  // namespace

std::unique_ptr<Bundle> MakeRealBundle(const RealDataOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed) {
  RealData data = MakeRealData(options);
  Rng rng(query_seed);
  std::vector<QueryInstance> queries =
      MakeRealQueries(data, per_template, &rng);
  return HostBundle(std::move(data.catalog), std::move(data.market_tables),
                    std::move(data.local_tables), std::move(queries));
}

std::unique_ptr<Bundle> MakeTpchBundle(const TpchOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed) {
  TpchData data = MakeTpchData(options);
  Rng rng(query_seed);
  std::vector<QueryInstance> queries =
      MakeTpchQueries(data, per_template, &rng);
  return HostBundle(std::move(data.catalog), std::move(data.market_tables),
                    std::move(data.local_tables), std::move(queries));
}

std::unique_ptr<exec::PayLess> NewPayLessClient(const Bundle& bundle,
                                                exec::PayLessConfig config) {
  auto client = std::make_unique<exec::PayLess>(&bundle.catalog,
                                                bundle.market.get(), config);
  for (const auto& [name, rows] : bundle.local_tables) {
    const Status st = client->LoadLocalTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return client;
}

exec::PayLessConfig PayLessFullConfig() {
  exec::PayLessConfig config;
  config.optimizer.use_sqr = true;
  config.optimizer.use_search_reduction = true;
  config.optimizer.cost_model = core::CostModelKind::kTransactions;
  return config;
}

exec::PayLessConfig PayLessNoSqrConfig() {
  exec::PayLessConfig config = PayLessFullConfig();
  config.optimizer.use_sqr = false;
  return config;
}

exec::PayLessConfig MinimizingCallsConfig() {
  exec::PayLessConfig config;
  config.optimizer.use_sqr = false;
  config.optimizer.use_search_reduction = true;
  config.optimizer.cost_model = core::CostModelKind::kCalls;
  return config;
}

std::unique_ptr<federation::FederatedMarket> MakeFederatedMarket(
    const Bundle& bundle, const std::vector<FederatedEndpointSpec>& specs,
    uint64_t base_seed) {
  auto federation =
      std::make_unique<federation::FederatedMarket>(&bundle.catalog, base_seed);
  // Distinct market datasets in catalog (name) order; the order fixes which
  // endpoint discounts which dataset, so it must be deterministic.
  std::vector<std::string> datasets;
  for (const std::string& table : bundle.catalog.TableNames()) {
    const catalog::TableDef* def = bundle.catalog.FindTable(table);
    if (def == nullptr || def->dataset.empty()) continue;  // local table
    if (std::find(datasets.begin(), datasets.end(), def->dataset) ==
        datasets.end()) {
      datasets.push_back(def->dataset);
    }
  }
  for (size_t e = 0; e < specs.size(); ++e) {
    federation::EndpointConfig config;
    config.id = specs[e].id;
    config.fault_profile = specs[e].fault_profile;
    config.inject_faults = specs[e].inject_faults;
    config.simulated_latency_micros = specs[e].simulated_latency_micros;
    for (size_t d = 0; d < datasets.size(); ++d) {
      const catalog::DatasetDef* base = bundle.catalog.FindDataset(datasets[d]);
      assert(base != nullptr);
      federation::DatasetTerms terms;
      const bool assigned = d % specs.size() == e;
      const double scale =
          assigned ? specs[e].discount_scale : specs[e].price_scale;
      terms.price_per_transaction = base->price_per_transaction * scale;
      terms.tuples_per_transaction =
          assigned ? std::max<int64_t>(
                         1, static_cast<int64_t>(
                                static_cast<double>(
                                    base->tuples_per_transaction) *
                                specs[e].discount_page_scale))
                   : base->tuples_per_transaction;
      config.menu[datasets[d]] = terms;
    }
    const Status st = federation->AddEndpoint(config);
    assert(st.ok());
    (void)st;
  }
  for (const auto& [name, rows] : bundle.market_tables) {
    const Status st = federation->HostTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return federation;
}

std::unique_ptr<exec::PayLess> NewFederatedPayLessClient(
    const Bundle& bundle, federation::FederatedMarket* federation,
    exec::PayLessConfig config) {
  config.federation = federation;
  auto client = std::make_unique<exec::PayLess>(&bundle.catalog,
                                                bundle.market.get(), config);
  for (const auto& [name, rows] : bundle.local_tables) {
    const Status st = client->LoadLocalTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return client;
}

std::unique_ptr<exec::DownloadAllClient> NewDownloadAllClient(
    const Bundle& bundle) {
  auto client = std::make_unique<exec::DownloadAllClient>(&bundle.catalog,
                                                          bundle.market.get());
  for (const auto& [name, rows] : bundle.local_tables) {
    const Status st = client->LoadLocalTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return client;
}

}  // namespace payless::workload
