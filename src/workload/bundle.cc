#include "workload/bundle.h"

#include <cassert>

namespace payless::workload {

namespace {

std::unique_ptr<Bundle> HostBundle(
    catalog::Catalog catalog,
    std::map<std::string, std::vector<Row>> market_tables,
    std::map<std::string, std::vector<Row>> local_tables,
    std::vector<QueryInstance> queries) {
  auto bundle = std::make_unique<Bundle>();
  bundle->catalog = std::move(catalog);
  bundle->local_tables = std::move(local_tables);
  bundle->queries = std::move(queries);
  bundle->market = std::make_unique<market::DataMarket>(&bundle->catalog);
  for (auto& [name, rows] : market_tables) {
    const Status st = bundle->market->HostTable(name, std::move(rows));
    assert(st.ok());
    (void)st;
  }
  return bundle;
}

}  // namespace

std::unique_ptr<Bundle> MakeRealBundle(const RealDataOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed) {
  RealData data = MakeRealData(options);
  Rng rng(query_seed);
  std::vector<QueryInstance> queries =
      MakeRealQueries(data, per_template, &rng);
  return HostBundle(std::move(data.catalog), std::move(data.market_tables),
                    std::move(data.local_tables), std::move(queries));
}

std::unique_ptr<Bundle> MakeTpchBundle(const TpchOptions& options,
                                       size_t per_template,
                                       uint64_t query_seed) {
  TpchData data = MakeTpchData(options);
  Rng rng(query_seed);
  std::vector<QueryInstance> queries =
      MakeTpchQueries(data, per_template, &rng);
  return HostBundle(std::move(data.catalog), std::move(data.market_tables),
                    std::move(data.local_tables), std::move(queries));
}

std::unique_ptr<exec::PayLess> NewPayLessClient(const Bundle& bundle,
                                                exec::PayLessConfig config) {
  auto client = std::make_unique<exec::PayLess>(&bundle.catalog,
                                                bundle.market.get(), config);
  for (const auto& [name, rows] : bundle.local_tables) {
    const Status st = client->LoadLocalTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return client;
}

exec::PayLessConfig PayLessFullConfig() {
  exec::PayLessConfig config;
  config.optimizer.use_sqr = true;
  config.optimizer.use_search_reduction = true;
  config.optimizer.cost_model = core::CostModelKind::kTransactions;
  return config;
}

exec::PayLessConfig PayLessNoSqrConfig() {
  exec::PayLessConfig config = PayLessFullConfig();
  config.optimizer.use_sqr = false;
  return config;
}

exec::PayLessConfig MinimizingCallsConfig() {
  exec::PayLessConfig config;
  config.optimizer.use_sqr = false;
  config.optimizer.use_search_reduction = true;
  config.optimizer.cost_model = core::CostModelKind::kCalls;
  return config;
}

std::unique_ptr<exec::DownloadAllClient> NewDownloadAllClient(
    const Bundle& bundle) {
  auto client = std::make_unique<exec::DownloadAllClient>(&bundle.catalog,
                                                          bundle.market.get());
  for (const auto& [name, rows] : bundle.local_tables) {
    const Status st = client->LoadLocalTable(name, rows);
    assert(st.ok());
    (void)st;
  }
  return client;
}

}  // namespace payless::workload
