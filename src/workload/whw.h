// Synthetic stand-in for the paper's real datasets (Fig. 1a):
//   - Worldwide Historical Weather (WHW): Station + Weather tables,
//   - Environmental Hazard Rank (EHR): Pollution table,
//   - the buyer's local ZipMap table.
//
// The generator preserves the properties the evaluation depends on: the
// same schemas and binding patterns (all attributes free), Weather >>
// Station with one record per station per day, station counts skewed across
// countries (one dominant "United States"), cities holding only a few of a
// country's many stations (the Fig. 1 P1-vs-P2 gap), and zip codes mapping
// to station cities. `scale` = 1.0 approximates the paper-reported
// cardinalities; benches use a smaller scale recorded in EXPERIMENTS.md.
#ifndef PAYLESS_WORKLOAD_WHW_H_
#define PAYLESS_WORKLOAD_WHW_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/value.h"

namespace payless::workload {

struct RealDataOptions {
  double scale = 0.05;       // 1.0 ~ paper sizes (3962 stations, 44210 ranks)
  int64_t num_countries = 20;
  int64_t days = 2920;       // weather depth: 8 years of daily records
  /// The meteorological application's parameter space: query instances draw
  /// their date ranges from the most recent `query_window_days` only, while
  /// Download All must buy the full history — the paper's WHW is ~13 years
  /// deep for the same reason.
  int64_t query_window_days = 365;
  uint64_t seed = 42;
  int64_t tuples_per_transaction = 100;  // the market's page size t
  double price_per_transaction = 1.0;    // p (the paper normalizes to $1)
};

/// Generated data plus the instantiation helpers the query templates need.
struct RealData {
  catalog::Catalog catalog;
  std::map<std::string, std::vector<Row>> market_tables;  // Station/Weather/Pollution
  std::map<std::string, std::vector<Row>> local_tables;   // ZipMap

  std::vector<std::string> countries;
  std::map<std::string, std::vector<std::string>> cities_by_country;
  std::vector<int64_t> valid_dates;  // ascending YYYYMMDD codes
  /// Suffix of valid_dates the query templates may draw ranges from.
  std::vector<int64_t> queryable_dates;
  /// Zip codes that have Pollution rows, with a rank of each (for building
  /// guaranteed-non-empty Q5 instances), keyed by country.
  std::map<std::string, std::vector<std::pair<int64_t, int64_t>>>
      polluted_zips_by_country;
  std::map<std::string, std::vector<int64_t>> zips_by_country;
  std::map<int64_t, std::string> city_of_zip;
  std::set<std::string> cities_with_stations;
  int64_t max_rank = 0;
};

RealData MakeRealData(const RealDataOptions& options);

}  // namespace payless::workload

#endif  // PAYLESS_WORKLOAD_WHW_H_
