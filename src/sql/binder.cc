#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "sql/bound_query.h"

namespace payless::sql {

Box BoundRelation::QueryRegion() const {
  market::RestCall call;
  call.table = def->name;
  call.conditions = conditions;
  if (always_empty) {
    // All-empty dims.
    std::vector<Interval> dims(def->ConstrainableColumns().size(),
                               Interval::Empty());
    return Box(std::move(dims));
  }
  return market::CallRegion(*def, call);
}

bool BoundQuery::HasAggregates() const {
  return std::any_of(select.begin(), select.end(),
                     [](const BoundSelectItem& item) {
                       return item.kind == BoundSelectItem::Kind::kAggregate;
                     });
}

std::vector<JoinEdge> BoundQuery::JoinsOf(size_t rel) const {
  std::vector<JoinEdge> out;
  for (const JoinEdge& edge : joins) {
    if (edge.left.rel == rel || edge.right.rel == rel) out.push_back(edge);
  }
  return out;
}

std::string BoundQuery::ToString() const {
  std::ostringstream os;
  os << "BoundQuery{relations=[";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) os << ", ";
    os << relations[i].def->name
       << (relations[i].is_market() ? "(market)" : "(local)");
  }
  os << "], joins=" << joins.size() << ", residuals=" << residuals.size()
     << "}";
  return os.str();
}

namespace {

// Accumulates the literal predicates on one column before they are folded
// into a single AttrCondition.
struct ColumnConstraint {
  std::optional<Value> eq;
  bool contradiction = false;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  bool has_bounds = false;
};

class Binder {
 public:
  Binder(const SelectStmt& stmt, const catalog::Catalog& cat,
         const std::vector<Value>& params)
      : stmt_(stmt), catalog_(cat), params_(params) {}

  Result<BoundQuery> Bind() {
    query_.catalog = &catalog_;
    query_.explain = stmt_.explain;
    PAYLESS_RETURN_IF_ERROR(BindFrom());
    PAYLESS_RETURN_IF_ERROR(BindWhere());
    PAYLESS_RETURN_IF_ERROR(FoldConstraints());
    PropagateConditions();
    PAYLESS_RETURN_IF_ERROR(BindSelect());
    PAYLESS_RETURN_IF_ERROR(BindGroupBy());
    PAYLESS_RETURN_IF_ERROR(BindOrderBy());
    return std::move(query_);
  }

 private:
  Status BindFrom() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("FROM list is empty");
    }
    for (const std::string& name : stmt_.from) {
      const catalog::TableDef* def = catalog_.FindTable(name);
      if (def == nullptr) {
        return Status::NotFound("unknown table '" + name + "'");
      }
      for (const BoundRelation& existing : query_.relations) {
        if (existing.def == def) {
          return Status::NotSupported("table '" + name +
                                      "' appears twice (self-joins are not "
                                      "supported)");
        }
      }
      BoundRelation rel;
      rel.def = def;
      rel.conditions.assign(def->columns.size(),
                            market::AttrCondition::None());
      query_.relations.push_back(std::move(rel));
      constraints_.emplace_back(def->columns.size());
    }
    return Status::OK();
  }

  Result<BoundColumnRef> Resolve(const ColumnRef& ref) const {
    std::optional<BoundColumnRef> found;
    for (size_t r = 0; r < query_.relations.size(); ++r) {
      const catalog::TableDef& def = *query_.relations[r].def;
      if (!ref.table.empty() && ref.table != def.name) continue;
      const std::optional<size_t> col = def.ColumnIndex(ref.column);
      if (!col.has_value()) continue;
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" + ref.ToString() +
                                       "'");
      }
      found = BoundColumnRef{r, *col};
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column '" + ref.ToString() + "'");
    }
    return *found;
  }

  Result<Value> ResolveValue(const Operand& operand) const {
    if (operand.kind == Operand::Kind::kLiteral) return operand.literal;
    if (operand.kind == Operand::Kind::kParam) {
      if (operand.param_index >= params_.size()) {
        return Status::InvalidArgument(
            "statement has " + std::to_string(stmt_.num_params) +
            " parameter markers but only " + std::to_string(params_.size()) +
            " values were supplied");
      }
      return params_[operand.param_index];
    }
    return Status::Internal("ResolveValue called on a column operand");
  }

  // Type-checks `v` against the column and coerces int->double where the
  // column is kDouble.
  Result<Value> CoerceToColumn(const Value& v, const catalog::ColumnDef& col,
                               const std::string& context) const {
    if (v.is_null()) {
      return Status::InvalidArgument("NULL literal in " + context);
    }
    switch (col.type) {
      case ValueType::kInt64:
        if (v.is_int64()) return v;
        break;
      case ValueType::kDouble:
        if (v.is_double()) return v;
        if (v.is_int64()) return Value(static_cast<double>(v.AsInt64()));
        break;
      case ValueType::kString:
        if (v.is_string()) return v;
        break;
    }
    return Status::InvalidArgument("type mismatch in " + context +
                                   ": column '" + col.name + "' is " +
                                   ValueTypeName(col.type) + ", value is " +
                                   v.ToString());
  }

  Status BindWhere() {
    for (const Comparison& cmp : stmt_.where) {
      Result<BoundColumnRef> lhs = Resolve(cmp.lhs);
      PAYLESS_RETURN_IF_ERROR(lhs.status());

      if (cmp.rhs.kind == Operand::Kind::kColumn) {
        Result<BoundColumnRef> rhs = Resolve(cmp.rhs.column);
        PAYLESS_RETURN_IF_ERROR(rhs.status());
        if (cmp.op != CompareOp::kEq) {
          return Status::NotSupported(
              "column-to-column comparison '" + cmp.ToString() +
              "' must be an equality");
        }
        if (lhs->rel == rhs->rel) {
          return Status::NotSupported("same-relation column equality '" +
                                      cmp.ToString() + "' is not supported");
        }
        query_.joins.push_back(JoinEdge{*lhs, *rhs});
        continue;
      }

      Result<Value> raw = ResolveValue(cmp.rhs);
      PAYLESS_RETURN_IF_ERROR(raw.status());
      const catalog::ColumnDef& col =
          query_.relations[lhs->rel].def->columns[lhs->col];
      Result<Value> value = CoerceToColumn(*raw, col, "'" + cmp.ToString() + "'");
      PAYLESS_RETURN_IF_ERROR(value.status());

      // Predicates that can shape the REST call: comparisons on
      // constrainable columns with lattice-encodable values.
      const bool constrainable =
          col.binding != catalog::BindingKind::kOutput;
      const bool pushable =
          constrainable && cmp.op != CompareOp::kNe &&
          ((col.domain.is_numeric() && value->is_int64()) ||
           (col.domain.is_categorical() && cmp.op == CompareOp::kEq));
      if (!pushable) {
        query_.residuals.push_back(
            ResidualPredicate{*lhs, cmp.op, *value});
        continue;
      }

      ColumnConstraint& cc = constraints_[lhs->rel][lhs->col];
      switch (cmp.op) {
        case CompareOp::kEq:
          if (cc.eq.has_value() && *cc.eq != *value) cc.contradiction = true;
          cc.eq = *value;
          break;
        case CompareOp::kLt:
          cc.hi = std::min(cc.hi, value->AsInt64() - 1);
          cc.has_bounds = true;
          break;
        case CompareOp::kLe:
          cc.hi = std::min(cc.hi, value->AsInt64());
          cc.has_bounds = true;
          break;
        case CompareOp::kGt:
          cc.lo = std::max(cc.lo, value->AsInt64() + 1);
          cc.has_bounds = true;
          break;
        case CompareOp::kGe:
          cc.lo = std::max(cc.lo, value->AsInt64());
          cc.has_bounds = true;
          break;
        case CompareOp::kNe:
          break;  // unreachable: kNe is never pushable
      }
    }
    return Status::OK();
  }

  // Folds accumulated per-column constraints into AttrConditions.
  Status FoldConstraints() {
    for (size_t r = 0; r < query_.relations.size(); ++r) {
      BoundRelation& rel = query_.relations[r];
      for (size_t c = 0; c < rel.def->columns.size(); ++c) {
        ColumnConstraint& cc = constraints_[r][c];
        const catalog::ColumnDef& col = rel.def->columns[c];
        if (cc.contradiction) {
          rel.always_empty = true;
          continue;
        }
        if (cc.eq.has_value()) {
          if (cc.has_bounds && cc.eq->is_int64() &&
              !(cc.lo <= cc.eq->AsInt64() && cc.eq->AsInt64() <= cc.hi)) {
            rel.always_empty = true;
            continue;
          }
          rel.conditions[c] = market::AttrCondition::Point(*cc.eq);
          continue;
        }
        if (cc.has_bounds) {
          const Interval domain = col.domain.ToInterval();
          const Interval clipped = Interval(cc.lo, cc.hi).Intersect(domain);
          if (clipped.empty()) {
            rel.always_empty = true;
            continue;
          }
          if (clipped == domain) continue;  // no-op constraint
          rel.conditions[c] =
              market::AttrCondition::Range(clipped.lo, clipped.hi);
        }
      }
    }
    return Status::OK();
  }

  // Transitive constraint propagation across equi-join edges: in
  // `Station.Country = Weather.Country = 'US'` the literal binds Weather
  // directly, and the join equality implies Station.Country = 'US' too.
  // Without this, the optimizer would price Station as a whole-table scan
  // (the paper's plans C1/C2 in Fig. 1 rely on the propagated constant).
  void PropagateConditions() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const JoinEdge& edge : query_.joins) {
        changed |= PropagateAcross(edge.left, edge.right);
        changed |= PropagateAcross(edge.right, edge.left);
      }
    }
  }

  // Copies `from`'s condition onto `to` when `to` is unconstrained.
  // Returns true when something changed.
  bool PropagateAcross(const sql::BoundColumnRef& from,
                       const sql::BoundColumnRef& to) {
    const market::AttrCondition& src =
        query_.relations[from.rel].conditions[from.col];
    if (src.is_none()) return false;
    BoundRelation& target = query_.relations[to.rel];
    if (!target.conditions[to.col].is_none()) return false;
    const catalog::ColumnDef& col = target.def->columns[to.col];
    if (col.binding == catalog::BindingKind::kOutput) return false;

    if (src.kind == market::AttrCondition::Kind::kPoint) {
      // Type check; a value outside the target's published domain means the
      // join (and hence the query) is empty for this relation.
      const bool type_ok =
          (col.domain.is_numeric() && src.point.is_int64()) ||
          (col.domain.is_categorical() && src.point.is_string());
      if (!type_ok) return false;
      if (!col.domain.Encode(src.point).has_value()) {
        // Do not report progress twice, or the fixpoint loop never ends.
        if (target.always_empty) return false;
        target.always_empty = true;
        return true;
      }
      target.conditions[to.col] = src;
      return true;
    }
    // Range: only meaningful for numeric targets; clip to the domain.
    if (!col.domain.is_numeric()) return false;
    const Interval clipped = src.range.Intersect(col.domain.ToInterval());
    if (clipped.empty()) {
      if (target.always_empty) return false;
      target.always_empty = true;
      return true;
    }
    if (clipped == col.domain.ToInterval()) return false;  // no-op
    target.conditions[to.col] =
        market::AttrCondition::Range(clipped.lo, clipped.hi);
    return true;
  }

  Status BindSelect() {
    if (stmt_.select.empty()) {
      return Status::InvalidArgument("empty SELECT list");
    }
    for (const SelectItem& item : stmt_.select) {
      BoundSelectItem bound;
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          bound.kind = BoundSelectItem::Kind::kStar;
          break;
        case SelectItem::Kind::kColumn: {
          bound.kind = BoundSelectItem::Kind::kColumn;
          Result<BoundColumnRef> ref = Resolve(item.column);
          PAYLESS_RETURN_IF_ERROR(ref.status());
          bound.column = *ref;
          bound.output_name =
              item.alias.empty() ? item.column.column : item.alias;
          break;
        }
        case SelectItem::Kind::kAggregate: {
          bound.kind = BoundSelectItem::Kind::kAggregate;
          bound.agg = item.agg;
          bound.agg_star = item.agg_star;
          if (!item.agg_star) {
            Result<BoundColumnRef> ref = Resolve(item.column);
            PAYLESS_RETURN_IF_ERROR(ref.status());
            bound.column = *ref;
          }
          bound.output_name =
              item.alias.empty()
                  ? std::string(storage::AggFuncName(item.agg)) + "(" +
                        (item.agg_star ? "*" : item.column.column) + ")"
                  : item.alias;
          break;
        }
      }
      query_.select.push_back(std::move(bound));
    }
    return Status::OK();
  }

  Status BindGroupBy() {
    for (const ColumnRef& ref : stmt_.group_by) {
      Result<BoundColumnRef> bound = Resolve(ref);
      PAYLESS_RETURN_IF_ERROR(bound.status());
      query_.group_by.push_back(*bound);
    }
    const bool has_agg = query_.HasAggregates();
    if (!query_.group_by.empty() && !has_agg) {
      return Status::NotSupported("GROUP BY without aggregates");
    }
    if (has_agg) {
      // Every plain column in the SELECT list must be a grouping column.
      for (const BoundSelectItem& item : query_.select) {
        if (item.kind != BoundSelectItem::Kind::kColumn) continue;
        const bool grouped =
            std::find(query_.group_by.begin(), query_.group_by.end(),
                      item.column) != query_.group_by.end();
        if (!grouped) {
          return Status::InvalidArgument(
              "column '" + item.output_name +
              "' must appear in GROUP BY when aggregates are used");
        }
      }
    }
    return Status::OK();
  }

  // ORDER BY keys name OUTPUT columns (select-list aliases or names).
  Status BindOrderBy() {
    for (const OrderItem& item : stmt_.order_by) {
      if (!item.column.table.empty()) {
        return Status::NotSupported(
            "ORDER BY must reference an output column by its (unqualified) "
            "name or alias");
      }
      std::optional<size_t> index;
      for (size_t s = 0; s < query_.select.size(); ++s) {
        if (query_.select[s].kind == BoundSelectItem::Kind::kStar) {
          return Status::NotSupported("ORDER BY with SELECT *");
        }
        if (query_.select[s].output_name == item.column.column) {
          if (index.has_value()) {
            return Status::InvalidArgument("ambiguous ORDER BY column '" +
                                           item.column.column + "'");
          }
          index = s;
        }
      }
      if (!index.has_value()) {
        return Status::NotFound("ORDER BY column '" + item.column.column +
                                "' is not an output column");
      }
      query_.order_by.push_back(BoundOrderItem{*index, item.ascending});
    }
    return Status::OK();
  }

  const SelectStmt& stmt_;
  const catalog::Catalog& catalog_;
  const std::vector<Value>& params_;
  BoundQuery query_;
  std::vector<std::vector<ColumnConstraint>> constraints_;
};

}  // namespace

Result<BoundQuery> Bind(const SelectStmt& stmt, const catalog::Catalog& cat,
                        const std::vector<Value>& params) {
  if (params.size() < stmt.num_params) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(stmt.num_params) +
        " parameter markers but " + std::to_string(params.size()) +
        " values were supplied");
  }
  Binder binder(stmt, cat, params);
  return binder.Bind();
}

}  // namespace payless::sql
