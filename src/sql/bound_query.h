// Bound (catalog-resolved) query representation: the optimizer's input.
//
// The binder classifies every WHERE conjunct:
//   - column-vs-literal predicates on constrainable market attributes become
//     per-relation REST-call conditions (they shape the relation's query
//     region in the semantic store's space);
//   - `a = b` across relations become join edges (candidate bind-join paths);
//   - everything else (NE, predicates on output-only attributes, predicates
//     on local tables) becomes a residual predicate applied by the local
//     engine after retrieval.
#ifndef PAYLESS_SQL_BOUND_QUERY_H_
#define PAYLESS_SQL_BOUND_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/compare.h"
#include "common/geometry.h"
#include "market/rest_call.h"
#include "sql/ast.h"
#include "storage/ops.h"

namespace payless::sql {

/// A column of one of the query's relations, by position.
struct BoundColumnRef {
  size_t rel = 0;
  size_t col = 0;

  bool operator==(const BoundColumnRef& other) const {
    return rel == other.rel && col == other.col;
  }
};

/// Predicate the local engine applies after retrieval.
struct ResidualPredicate {
  BoundColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

/// One FROM-list relation with the literal conditions pushed into it.
struct BoundRelation {
  const catalog::TableDef* def = nullptr;
  /// Per-column REST conditions implied by the query's literal predicates
  /// (kNone where unconstrained). For local relations these are still
  /// recorded — the local engine applies them as scan filters.
  std::vector<market::AttrCondition> conditions;
  /// Set when the conditions are contradictory (e.g. Country = 'US' AND
  /// Country = 'DE'): the relation, and thus the query, is empty.
  bool always_empty = false;

  bool is_market() const { return !def->is_local; }

  /// The relation's query footprint over its constrainable-attribute space.
  Box QueryRegion() const;
};

/// Equi-join edge between two relations.
struct JoinEdge {
  BoundColumnRef left;
  BoundColumnRef right;
};

/// Resolved SELECT-list item.
struct BoundSelectItem {
  enum class Kind { kStar, kColumn, kAggregate };

  Kind kind = Kind::kColumn;
  BoundColumnRef column;  // kColumn, or aggregate argument
  storage::AggFunc agg = storage::AggFunc::kCount;
  bool agg_star = false;
  std::string output_name;
};

/// ORDER BY key resolved to an output-column position.
struct BoundOrderItem {
  size_t output_column = 0;
  bool ascending = true;
};

struct BoundQuery {
  const catalog::Catalog* catalog = nullptr;
  /// Carried over from the statement: kPlain / kAnalyze route the query
  /// through the EXPLAIN renderer instead of (or in addition to) execution.
  ExplainMode explain = ExplainMode::kNone;
  std::vector<BoundRelation> relations;
  std::vector<JoinEdge> joins;
  std::vector<ResidualPredicate> residuals;
  std::vector<BoundSelectItem> select;
  std::vector<BoundColumnRef> group_by;
  std::vector<BoundOrderItem> order_by;

  bool HasAggregates() const;

  /// Join edges incident to relation `rel`.
  std::vector<JoinEdge> JoinsOf(size_t rel) const;

  std::string ToString() const;
};

/// Resolves `stmt` against the catalog, substituting `params` for the `?`
/// markers (arity- and type-checked).
Result<BoundQuery> Bind(const SelectStmt& stmt, const catalog::Catalog& cat,
                        const std::vector<Value>& params);

}  // namespace payless::sql

#endif  // PAYLESS_SQL_BOUND_QUERY_H_
