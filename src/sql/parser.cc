#include "sql/parser.h"

#include <sstream>

#include "sql/lexer.h"

namespace payless::sql {

namespace {

storage::AggFunc AggFromKeyword(const std::string& kw) {
  if (kw == "COUNT") return storage::AggFunc::kCount;
  if (kw == "SUM") return storage::AggFunc::kSum;
  if (kw == "AVG") return storage::AggFunc::kAvg;
  if (kw == "MIN") return storage::AggFunc::kMin;
  return storage::AggFunc::kMax;
}

bool IsAggKeyword(const Token& t) {
  return t.type == TokenType::kKeyword &&
         (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
          t.text == "MIN" || t.text == "MAX");
}

CompareOp OpFromText(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "<>") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  return CompareOp::kGe;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    if (Peek().IsKeyword("EXPLAIN")) {
      Advance();
      stmt.explain = ExplainMode::kPlain;
      if (Peek().IsKeyword("ANALYZE")) {
        Advance();
        stmt.explain = ExplainMode::kAnalyze;
      }
      if (!Peek().IsKeyword("SELECT")) {
        return Error("expected SELECT after EXPLAIN");
      }
    } else if (Peek().IsKeyword("ANALYZE")) {
      return Error("ANALYZE is only valid after EXPLAIN");
    }
    PAYLESS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    PAYLESS_RETURN_IF_ERROR(ParseSelectList(&stmt));
    PAYLESS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PAYLESS_RETURN_IF_ERROR(ParseFromList(&stmt));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      PAYLESS_RETURN_IF_ERROR(ParseWhere(&stmt));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      PAYLESS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PAYLESS_RETURN_IF_ERROR(ParseGroupBy(&stmt));
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      PAYLESS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PAYLESS_RETURN_IF_ERROR(ParseOrderBy(&stmt));
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    stmt.num_params = num_params_;
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    std::ostringstream os;
    os << msg << " (near '" << Peek().text << "', offset " << Peek().position
       << ")";
    return Status::ParseError(os.str());
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Error("expected " + kw);
    Advance();
    return Status::OK();
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected column reference near '" +
                                Peek().text + "'");
    }
    ColumnRef ref;
    ref.column = Advance().text;
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError("expected column name after '.'");
      }
      ref.table = std::move(ref.column);
      ref.column = Advance().text;
    }
    return ref;
  }

  Status ParseSelectList(SelectStmt* stmt) {
    while (true) {
      SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.kind = SelectItem::Kind::kStar;
      } else if (IsAggKeyword(Peek())) {
        item.kind = SelectItem::Kind::kAggregate;
        item.agg = AggFromKeyword(Advance().text);
        if (Peek().type != TokenType::kLParen) {
          return Error("expected '(' after aggregate");
        }
        Advance();
        if (Peek().type == TokenType::kStar) {
          Advance();
          item.agg_star = true;
        } else {
          Result<ColumnRef> ref = ParseColumnRef();
          PAYLESS_RETURN_IF_ERROR(ref.status());
          item.column = *ref;
        }
        if (Peek().type != TokenType::kRParen) {
          return Error("expected ')' after aggregate argument");
        }
        Advance();
      } else {
        item.kind = SelectItem::Kind::kColumn;
        Result<ColumnRef> ref = ParseColumnRef();
        PAYLESS_RETURN_IF_ERROR(ref.status());
        item.column = *ref;
      }
      if (Peek().IsKeyword("AS")) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      }
      stmt->select.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList(SelectStmt* stmt) {
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      stmt->from.push_back(Advance().text);
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<Operand> ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        Advance();
        return Operand::Lit(Value(t.int_value));
      case TokenType::kFloat:
        Advance();
        return Operand::Lit(Value(t.float_value));
      case TokenType::kString:
        Advance();
        return Operand::Lit(Value(t.text));
      case TokenType::kParam:
        Advance();
        return Operand::Param(num_params_++);
      case TokenType::kIdentifier: {
        Result<ColumnRef> ref = ParseColumnRef();
        PAYLESS_RETURN_IF_ERROR(ref.status());
        return Operand::Col(*ref);
      }
      default:
        return Status::ParseError("expected literal, '?', or column near '" +
                                  t.text + "'");
    }
  }

  // Parses one conjunct, desugaring chained equality `a = b = ?` into
  // (a = b) AND (b = ?). Chains are only meaningful for '='.
  Status ParseConjunct(SelectStmt* stmt) {
    Result<ColumnRef> lhs = ParseColumnRef();
    PAYLESS_RETURN_IF_ERROR(lhs.status());
    if (Peek().type != TokenType::kOperator) {
      return Error("expected comparison operator");
    }
    CompareOp op = OpFromText(Advance().text);
    Result<Operand> rhs = ParseOperand();
    PAYLESS_RETURN_IF_ERROR(rhs.status());

    Comparison cmp;
    cmp.lhs = *lhs;
    cmp.op = op;
    cmp.rhs = *rhs;
    stmt->where.push_back(cmp);

    // Chained equality: the previous rhs must itself be a column.
    while (op == CompareOp::kEq && Peek().IsOperator("=")) {
      if (stmt->where.back().rhs.kind != Operand::Kind::kColumn) {
        return Error("chained '=' requires a column on both sides");
      }
      Advance();
      Result<Operand> next = ParseOperand();
      PAYLESS_RETURN_IF_ERROR(next.status());
      Comparison chained;
      chained.lhs = stmt->where.back().rhs.column;
      chained.op = CompareOp::kEq;
      chained.rhs = *next;
      stmt->where.push_back(chained);
    }
    return Status::OK();
  }

  Status ParseWhere(SelectStmt* stmt) {
    while (true) {
      PAYLESS_RETURN_IF_ERROR(ParseConjunct(stmt));
      if (!Peek().IsKeyword("AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseGroupBy(SelectStmt* stmt) {
    while (true) {
      Result<ColumnRef> ref = ParseColumnRef();
      PAYLESS_RETURN_IF_ERROR(ref.status());
      stmt->group_by.push_back(*ref);
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseOrderBy(SelectStmt* stmt) {
    while (true) {
      OrderItem item;
      Result<ColumnRef> ref = ParseColumnRef();
      PAYLESS_RETURN_IF_ERROR(ref.status());
      item.column = *ref;
      if (Peek().IsKeyword("ASC")) {
        Advance();
      } else if (Peek().IsKeyword("DESC")) {
        Advance();
        item.ascending = false;
      }
      stmt->order_by.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t num_params_ = 0;
};

}  // namespace

Result<SelectStmt> Parse(const std::string& input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  PAYLESS_RETURN_IF_ERROR(tokens.status());
  Parser parser(std::move(*tokens));
  return parser.ParseSelect();
}

}  // namespace payless::sql
