// Recursive-descent parser for the PayLess SQL dialect.
#ifndef PAYLESS_SQL_PARSER_H_
#define PAYLESS_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace payless::sql {

/// Parses one SELECT statement. Chained equality `a = b = c` in the WHERE
/// clause desugars into the conjunction `a = b AND b = c`.
Result<SelectStmt> Parse(const std::string& input);

}  // namespace payless::sql

#endif  // PAYLESS_SQL_PARSER_H_
