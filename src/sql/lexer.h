// Tokenizer for the PayLess SQL dialect (the language of Table 1: SELECT /
// FROM / WHERE conjunctions / GROUP BY, aggregates, `?` parameter markers).
#ifndef PAYLESS_SQL_LEXER_H_
#define PAYLESS_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace payless::sql {

enum class TokenType {
  kIdentifier,   // table / column names (case-preserving)
  kKeyword,      // SELECT, FROM, WHERE, AND, GROUP, BY, AS, ASC, DESC, ORDER
  kInteger,      // 123
  kFloat,        // 1.5
  kString,       // 'Seattle'
  kParam,        // ?
  kStar,         // *
  kComma,        // ,
  kDot,          // .
  kLParen,       // (
  kRParen,       // )
  kOperator,     // = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // raw text; keywords upper-cased
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;   // byte offset in the input, for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(const std::string& op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes `input`; returns ParseError with position info on bad input.
/// The final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace payless::sql

#endif  // PAYLESS_SQL_LEXER_H_
