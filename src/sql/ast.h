// Abstract syntax tree for the PayLess SQL dialect.
//
// The dialect covers the workloads of the paper (Table 1 and the TPC-H-style
// templates): single SELECT blocks, conjunctive WHERE clauses of column/
// literal comparisons and column=column equi-joins (including chained
// `a = b = ?` equality, which appears verbatim in templates Q3-Q5), GROUP BY
// and the five standard aggregates, and `?` parameter markers.
#ifndef PAYLESS_SQL_AST_H_
#define PAYLESS_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/compare.h"
#include "common/value.h"
#include "storage/ops.h"

namespace payless::sql {

/// A possibly-qualified column reference.
struct ColumnRef {
  std::string table;   // empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
};

/// Right-hand side of a comparison: a literal, a parameter marker, or
/// another column (making the comparison a join predicate when op is `=`).
struct Operand {
  enum class Kind { kLiteral, kParam, kColumn };

  Kind kind = Kind::kLiteral;
  Value literal;
  size_t param_index = 0;  // ordinal of the `?` in the statement, from 0
  ColumnRef column;

  static Operand Lit(Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
  static Operand Param(size_t index) {
    Operand o;
    o.kind = Kind::kParam;
    o.param_index = index;
    return o;
  }
  static Operand Col(ColumnRef ref) {
    Operand o;
    o.kind = Kind::kColumn;
    o.column = std::move(ref);
    return o;
  }

  std::string ToString() const;
};

/// One conjunct of the WHERE clause: `lhs op rhs`.
struct Comparison {
  ColumnRef lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  std::string ToString() const;
};

/// One item of the SELECT list: `*`, a column, or an aggregate.
struct SelectItem {
  enum class Kind { kStar, kColumn, kAggregate };

  Kind kind = Kind::kColumn;
  ColumnRef column;                       // kColumn, or kAggregate argument
  storage::AggFunc agg = storage::AggFunc::kCount;
  bool agg_star = false;                  // COUNT(*)
  std::string alias;                      // optional AS name

  std::string ToString() const;
};

/// ORDER BY key. The referenced column must be an OUTPUT column of the
/// query (a select-list alias or column name).
struct OrderItem {
  ColumnRef column;
  bool ascending = true;
};

/// EXPLAIN prefix of a statement. kPlain renders the chosen plan without
/// executing (or spending) anything; kAnalyze executes the query and joins
/// the measured per-access actuals into the rendered plan.
enum class ExplainMode { kNone, kPlain, kAnalyze };

/// A parsed SELECT statement (optionally an EXPLAIN of one).
struct SelectStmt {
  ExplainMode explain = ExplainMode::kNone;
  std::vector<SelectItem> select;
  std::vector<std::string> from;          // table names
  std::vector<Comparison> where;          // conjunction
  std::vector<ColumnRef> group_by;
  std::vector<OrderItem> order_by;
  size_t num_params = 0;                  // number of `?` markers

  std::string ToString() const;
};

}  // namespace payless::sql

#endif  // PAYLESS_SQL_AST_H_
