#include "sql/lexer.h"

#include <cctype>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace payless::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",    "AND",     "GROUP",   "BY",  "AS",
      "ORDER",  "ASC",   "DESC",     "COUNT",   "SUM",     "AVG", "MIN",
      "MAX",    "DISTINCT", "EXPLAIN", "ANALYZE",
  };
  return kKeywords;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&tokens](TokenType type, std::string text, size_t pos) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        push(TokenType::kKeyword, upper, start);
      } else {
        push(TokenType::kIdentifier, std::move(word), start);
      }
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      const std::string num = input.substr(i, j - i);
      Token t;
      t.position = start;
      t.text = num;
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::stod(num);
      } else {
        t.type = TokenType::kInteger;
        try {
          t.int_value = std::stoll(num);
        } catch (const std::out_of_range&) {
          return Status::ParseError("integer literal out of range at offset " +
                                    std::to_string(start));
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n && input[j] != '\'') {
        text.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kString, std::move(text), start);
      i = j + 1;
      continue;
    }

    switch (c) {
      case '?':
        push(TokenType::kParam, "?", start);
        ++i;
        continue;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        continue;
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        continue;
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        continue;
      case '=':
        push(TokenType::kOperator, "=", start);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kOperator, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kOperator, "<>", start);
          i += 2;
        } else {
          push(TokenType::kOperator, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kOperator, ">=", start);
          i += 2;
        } else {
          push(TokenType::kOperator, ">", start);
          ++i;
        }
        continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kOperator, "<>", start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(start));
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }

  push(TokenType::kEnd, "", n);
  return tokens;
}

}  // namespace payless::sql
