#include "sql/ast.h"

#include <sstream>

namespace payless::sql {

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kParam:
      return "?" + std::to_string(param_index);
    case Kind::kColumn:
      return column.ToString();
  }
  return "?";
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CompareOpName(op) + " " + rhs.ToString();
}

std::string SelectItem::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kStar:
      out = "*";
      break;
    case Kind::kColumn:
      out = column.ToString();
      break;
    case Kind::kAggregate:
      out = std::string(storage::AggFuncName(agg)) + "(" +
            (agg_star ? "*" : column.ToString()) + ")";
      break;
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  if (explain == ExplainMode::kPlain) os << "EXPLAIN ";
  if (explain == ExplainMode::kAnalyze) os << "EXPLAIN ANALYZE ";
  os << "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) os << ", ";
    os << select[i].ToString();
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i];
  }
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      os << where[i].ToString();
    }
  }
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i].ToString();
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].column.ToString();
      if (!order_by[i].ascending) os << " DESC";
    }
  }
  return os.str();
}

}  // namespace payless::sql
