// In-memory relational tables for the buyer-side DBMS (the engine PayLess
// offloads local processing to, steps 6-8 of Fig. 3) and for the data-market
// simulator's hosted datasets.
#ifndef PAYLESS_STORAGE_TABLE_H_
#define PAYLESS_STORAGE_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace payless::storage {

/// A column in a (possibly joined) schema. `table` qualifies the column so
/// join outputs can carry both `Station.Country` and `Weather.Country`.
struct SchemaColumn {
  std::string table;
  std::string name;
  ValueType type = ValueType::kInt64;

  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

/// Ordered column list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<SchemaColumn> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const SchemaColumn& column(size_t i) const { return columns_[i]; }
  const std::vector<SchemaColumn>& columns() const { return columns_; }

  /// Finds a column by (optionally qualified) name. An unqualified name
  /// matches any table; returns nullopt when missing or ambiguous.
  std::optional<size_t> Find(const std::string& table,
                             const std::string& name) const;
  std::optional<size_t> Find(const std::string& name) const {
    return Find("", name);
  }

  /// Concatenation for join outputs.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<SchemaColumn> columns_;
};

/// Row-store table: a schema plus materialized rows. The engine is fully
/// materializing — operator outputs are new Tables — which is the right
/// trade-off here because local processing is free (only REST calls are
/// billed) and result sets are bounded by what was paid for.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Append(Row row);
  Status AppendChecked(Row row);  // validates arity and value types

  /// All values of one column, in row order.
  std::vector<Value> ColumnValues(size_t col) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace payless::storage

#endif  // PAYLESS_STORAGE_TABLE_H_
