#include "storage/table.h"

#include <cassert>
#include <sstream>

namespace payless::storage {

std::optional<size_t> Schema::Find(const std::string& table,
                                   const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const SchemaColumn& col = columns_[i];
    if (col.name != name) continue;
    if (!table.empty() && col.table != table) continue;
    if (found.has_value()) return std::nullopt;  // ambiguous
    found = i;
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<SchemaColumn> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

void Table::Append(Row row) {
  assert(row.size() == schema_.num_columns());
  rows_.push_back(std::move(row));
}

Status Table::AppendChecked(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const ValueType expected = schema_.column(i).type;
    const bool numeric_ok =
        (expected == ValueType::kDouble &&
         (row[i].is_int64() || row[i].is_double()));
    if (row[i].type() != expected && !numeric_ok) {
      return Status::InvalidArgument(
          "column '" + schema_.column(i).QualifiedName() + "' expects " +
          ValueTypeName(expected) + ", got " + ValueTypeName(row[i].type()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> Table::ColumnValues(size_t col) const {
  assert(col < schema_.num_columns());
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(row[col]);
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    os << "  " << RowToString(rows_[i]) << "\n";
  }
  if (rows_.size() > max_rows) {
    os << "  ... (" << rows_.size() - max_rows << " more)\n";
  }
  return os.str();
}

}  // namespace payless::storage
