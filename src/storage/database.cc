#include "storage/database.h"

namespace payless::storage {

Schema SchemaFromTableDef(const catalog::TableDef& def) {
  std::vector<SchemaColumn> cols;
  cols.reserve(def.columns.size());
  for (const catalog::ColumnDef& col : def.columns) {
    cols.push_back(SchemaColumn{def.name, col.name, col.type});
  }
  return Schema(std::move(cols));
}

Status Database::CreateTable(const catalog::TableDef& def) {
  const auto it = tables_.find(def.name);
  if (it != tables_.end()) {
    if (it->second.schema().num_columns() != def.columns.size()) {
      return Status::InvalidArgument("table '" + def.name +
                                     "' exists with a different schema");
    }
    return Status::OK();
  }
  tables_.emplace(def.name, Table(SchemaFromTableDef(def)));
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

const Table* Database::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::FindMutableTable(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status Database::InsertRows(const std::string& name,
                            const std::vector<Row>& rows) {
  Table* table = FindMutableTable(name);
  if (table == nullptr) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  for (const Row& row : rows) {
    PAYLESS_RETURN_IF_ERROR(table->AppendChecked(row));
  }
  return Status::OK();
}

Status Database::Truncate(const std::string& name) {
  Table* table = FindMutableTable(name);
  if (table == nullptr) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  table->mutable_rows().clear();
  return Status::OK();
}

}  // namespace payless::storage
