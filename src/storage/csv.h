// CSV import for buyer-side local tables (the ZipMap of Fig. 1a is exactly
// the kind of small mapping table an organization keeps as a file).
//
// Dialect: comma-separated, first line optional header, double quotes for
// fields containing commas/quotes (doubled quotes escape), no embedded
// newlines. Values parse by the target schema's column types; empty fields
// become SQL NULL.
#ifndef PAYLESS_STORAGE_CSV_H_
#define PAYLESS_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace payless::storage {

struct CsvOptions {
  bool has_header = true;
  char delimiter = ',';
};

/// Parses CSV text into rows typed by `schema`. Fails with ParseError on
/// arity mismatches, unparseable numbers, or unbalanced quotes (the error
/// names the line).
Result<std::vector<Row>> ParseCsv(const std::string& text,
                                  const Schema& schema,
                                  const CsvOptions& options = {});

/// Reads a CSV file from disk and parses it against `schema`.
Result<std::vector<Row>> LoadCsvFile(const std::string& path,
                                     const Schema& schema,
                                     const CsvOptions& options = {});

/// Serializes a table to CSV text (with header), inverse of ParseCsv.
std::string ToCsv(const Table& table);

}  // namespace payless::storage

#endif  // PAYLESS_STORAGE_CSV_H_
