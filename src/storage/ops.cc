#include "storage/ops.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace payless::storage {

Table Filter(const Table& input, const std::vector<ColumnPredicate>& preds) {
  Table out(input.schema());
  for (const Row& row : input.rows()) {
    bool keep = true;
    for (const ColumnPredicate& p : preds) {
      if (!p.Matches(row)) {
        keep = false;
        break;
      }
    }
    if (keep) out.Append(row);
  }
  return out;
}

Table FilterFn(const Table& input,
               const std::function<bool(const Row&)>& pred) {
  Table out(input.schema());
  for (const Row& row : input.rows()) {
    if (pred(row)) out.Append(row);
  }
  return out;
}

Table Project(const Table& input, const std::vector<size_t>& columns) {
  std::vector<SchemaColumn> cols;
  cols.reserve(columns.size());
  for (size_t c : columns) {
    assert(c < input.schema().num_columns());
    cols.push_back(input.schema().column(c));
  }
  Table out{Schema(std::move(cols))};
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(columns.size());
    for (size_t c : columns) projected.push_back(row[c]);
    out.Append(std::move(projected));
  }
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<size_t, size_t>>& keys) {
  Table out(Schema::Concat(left.schema(), right.schema()));
  if (keys.empty()) return Cartesian(left, right);

  // Build on the smaller side; probe with the larger.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;

  auto key_of = [&](const Row& row, bool from_left) {
    Row key;
    key.reserve(keys.size());
    for (const auto& [lc, rc] : keys) key.push_back(row[from_left ? lc : rc]);
    return key;
  };
  auto has_null = [](const Row& key) {
    for (const Value& v : key) {
      if (v.is_null()) return true;
    }
    return false;
  };

  std::unordered_map<Row, std::vector<size_t>, RowHasher> hash_table;
  for (size_t i = 0; i < build.num_rows(); ++i) {
    Row key = key_of(build.rows()[i], build_left);
    if (has_null(key)) continue;
    hash_table[std::move(key)].push_back(i);
  }

  for (const Row& probe_row : probe.rows()) {
    Row key = key_of(probe_row, !build_left);
    if (has_null(key)) continue;
    const auto it = hash_table.find(key);
    if (it == hash_table.end()) continue;
    for (size_t bi : it->second) {
      const Row& build_row = build.rows()[bi];
      const Row& lrow = build_left ? build_row : probe_row;
      const Row& rrow = build_left ? probe_row : build_row;
      Row joined = lrow;
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.Append(std::move(joined));
    }
  }
  return out;
}

Table Cartesian(const Table& left, const Table& right) {
  Table out(Schema::Concat(left.schema(), right.schema()));
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      out.Append(std::move(joined));
    }
  }
  return out;
}

Table ThetaJoin(const Table& left, const Table& right,
                const std::function<bool(const Row&)>& pred) {
  Table out(Schema::Concat(left.schema(), right.schema()));
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      if (pred(joined)) out.Append(std::move(joined));
    }
  }
  return out;
}

Table Distinct(const Table& input) {
  Table out(input.schema());
  std::unordered_set<Row, RowHasher> seen;
  for (const Row& row : input.rows()) {
    if (seen.insert(row).second) out.Append(row);
  }
  return out;
}

Status UnionAll(Table* into, const Table& more) {
  if (into->schema().num_columns() != more.schema().num_columns()) {
    return Status::InvalidArgument("UNION ALL arity mismatch: " +
                                   into->schema().ToString() + " vs " +
                                   more.schema().ToString());
  }
  for (const Row& row : more.rows()) into->Append(row);
  return Status::OK();
}

Table SortBy(const Table& input, const std::vector<size_t>& columns) {
  Table out = input;
  std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                   [&columns](const Row& a, const Row& b) {
                     for (size_t c : columns) {
                       const int cmp = a[c].Compare(b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return out;
}

std::vector<Value> DistinctValues(const Table& input, size_t column) {
  std::unordered_set<Value, ValueHasher> seen;
  std::vector<Value> out;
  for (const Row& row : input.rows()) {
    const Value& v = row[column];
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

namespace {

// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_int64() || v.is_double()) sum += v.AsNumeric();
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value(count);
      case AggFunc::kSum:
        return count == 0 ? Value::Null() : Value(sum);
      case AggFunc::kAvg:
        return count == 0 ? Value::Null()
                          : Value(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

ValueType AggOutputType(const AggSpec& spec, const Schema& input) {
  switch (spec.func) {
    case AggFunc::kCount:
      return ValueType::kInt64;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      return ValueType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return spec.count_star ? ValueType::kInt64
                             : input.column(spec.column).type;
  }
  return ValueType::kDouble;
}

}  // namespace

Table GroupAggregate(const Table& input,
                     const std::vector<size_t>& group_columns,
                     const std::vector<AggSpec>& aggs) {
  std::vector<SchemaColumn> out_cols;
  for (size_t c : group_columns) out_cols.push_back(input.schema().column(c));
  for (const AggSpec& spec : aggs) {
    std::string name = spec.output_name;
    if (name.empty()) {
      name = std::string(AggFuncName(spec.func)) + "(" +
             (spec.count_star ? "*"
                              : input.schema().column(spec.column).name) +
             ")";
    }
    out_cols.push_back(SchemaColumn{"", name, AggOutputType(spec, input.schema())});
  }
  Table out{Schema(std::move(out_cols))};

  std::unordered_map<Row, size_t, RowHasher> group_index;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> states;

  for (const Row& row : input.rows()) {
    Row key;
    key.reserve(group_columns.size());
    for (size_t c : group_columns) key.push_back(row[c]);
    const auto [it, inserted] = group_index.emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(std::move(key));
      states.emplace_back(aggs.size());
    }
    std::vector<AggState>& group_states = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].func == AggFunc::kCount && aggs[a].count_star) {
        ++group_states[a].count;
      } else {
        group_states[a].Add(row[aggs[a].column]);
      }
    }
  }

  // SQL semantics: global aggregation over an empty input still yields one
  // row (COUNT = 0, others NULL).
  if (group_columns.empty() && group_keys.empty()) {
    group_keys.emplace_back();
    states.emplace_back(aggs.size());
  }

  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[g][a].Finish(aggs[a].func));
    }
    out.Append(std::move(row));
  }
  return out;
}

}  // namespace payless::storage
