#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace payless::storage {

namespace {

/// Splits one CSV line into raw fields, handling quoting.
Status SplitLine(const std::string& line, char delimiter, size_t line_no,
                 std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": unbalanced quote");
  }
  fields->push_back(std::move(field));
  return Status::OK();
}

Result<Value> ParseField(const std::string& field, ValueType type,
                         size_t line_no, size_t col) {
  if (field.empty()) return Value::Null();
  const std::string where =
      "line " + std::to_string(line_no) + ", column " + std::to_string(col);
  switch (type) {
    case ValueType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(where + ": '" + field +
                                  "' is not an integer");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(where + ": '" + field +
                                  "' is not a number");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Result<std::vector<Row>> ParseCsv(const std::string& text,
                                  const Schema& schema,
                                  const CsvOptions& options) {
  std::vector<Row> rows;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  std::vector<std::string> fields;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line_no == 1 && options.has_header) continue;
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    PAYLESS_RETURN_IF_ERROR(
        SplitLine(line, options.delimiter, line_no, &fields));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": " +
          std::to_string(fields.size()) + " fields for " +
          std::to_string(schema.num_columns()) + " columns");
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      Result<Value> value =
          ParseField(fields[c], schema.column(c).type, line_no, c);
      PAYLESS_RETURN_IF_ERROR(value.status());
      row.push_back(std::move(*value));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> LoadCsvFile(const std::string& path,
                                     const Schema& schema,
                                     const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), schema, options);
}

namespace {

std::string EscapeField(const std::string& field, char delimiter) {
  const bool needs_quotes =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ToCsv(const Table& table) {
  std::ostringstream os;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c > 0) os << ',';
    os << EscapeField(table.schema().column(c).QualifiedName(), ',');
  }
  os << '\n';
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      if (row[c].is_null()) continue;  // NULL -> empty field
      if (row[c].is_string()) {
        os << EscapeField(row[c].AsString(), ',');
      } else {
        os << row[c].ToString();
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace payless::storage
