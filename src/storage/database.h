// Named-table store: the buyer-side DBMS instance of Fig. 3. Holds both the
// buyer's own local tables and the mirror tables PayLess fills with data
// retrieved from the market (the paper deliberately never evicts: storage is
// cheap relative to re-buying data, §3).
#ifndef PAYLESS_STORAGE_DATABASE_H_
#define PAYLESS_STORAGE_DATABASE_H_

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/table.h"

namespace payless::storage {

/// Builds a storage schema (qualified with the table name) from catalog
/// metadata.
Schema SchemaFromTableDef(const catalog::TableDef& def);

class Database {
 public:
  /// Creates an empty table with the catalog-declared schema. Idempotent:
  /// re-creating an existing table with the same arity is a no-op.
  Status CreateTable(const catalog::TableDef& def);

  bool HasTable(const std::string& name) const;

  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// Appends rows; rows are validated against the table schema.
  Status InsertRows(const std::string& name, const std::vector<Row>& rows);

  /// Drops all rows but keeps the table (used between bench repetitions).
  Status Truncate(const std::string& name);

  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace payless::storage

#endif  // PAYLESS_STORAGE_DATABASE_H_
