// Relational operators over materialized tables: the local query engine
// PayLess offloads joins and aggregation to (Fig. 3, steps 6-8). Local
// processing contributes zero price in the paper's cost model, so these
// operators aim for correctness and reasonable asymptotics (hash joins,
// single-pass aggregation), not micro-optimization.
#ifndef PAYLESS_STORAGE_OPS_H_
#define PAYLESS_STORAGE_OPS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/compare.h"
#include "common/status.h"
#include "storage/table.h"

namespace payless::storage {

/// `column <op> literal` predicate, pre-resolved to a column index.
struct ColumnPredicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value literal;

  bool Matches(const Row& row) const {
    return EvalCompare(row[column], op, literal);
  }
};

/// Rows satisfying ALL predicates (conjunction).
Table Filter(const Table& input, const std::vector<ColumnPredicate>& preds);

/// Rows satisfying an arbitrary predicate.
Table FilterFn(const Table& input,
               const std::function<bool(const Row&)>& pred);

/// Keeps the given columns, in the given order.
Table Project(const Table& input, const std::vector<size_t>& columns);

/// Hash equi-join on key column pairs (left index, right index). Output
/// schema is Concat(left, right). NULL keys never match (SQL semantics).
Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<size_t, size_t>>& keys);

/// Cross product; output schema is Concat(left, right).
Table Cartesian(const Table& left, const Table& right);

/// Nested-loop join with an arbitrary ON predicate over the concatenated row.
Table ThetaJoin(const Table& left, const Table& right,
                const std::function<bool(const Row&)>& pred);

/// Duplicate elimination over whole rows.
Table Distinct(const Table& input);

/// Appends `more`'s rows (schemas must be arity/type compatible).
Status UnionAll(Table* into, const Table& more);

/// Stable sort by columns, ascending, NULLs first.
Table SortBy(const Table& input, const std::vector<size_t>& columns);

/// Distinct non-NULL values of one column, sorted ascending.
std::vector<Value> DistinctValues(const Table& input, size_t column);

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// One aggregate in the SELECT list. kCount ignores `column` when
/// `count_star` is set. `output_name` names the result column.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  size_t column = 0;
  bool count_star = false;
  std::string output_name;
};

/// GROUP BY `group_columns` with the given aggregates. With no group
/// columns, produces a single global-aggregate row (even over empty input,
/// where COUNT is 0 and the others are NULL). Output schema: group columns
/// first (original names), then one column per aggregate. Groups are emitted
/// in first-seen order.
Table GroupAggregate(const Table& input,
                     const std::vector<size_t>& group_columns,
                     const std::vector<AggSpec>& aggs);

}  // namespace payless::storage

#endif  // PAYLESS_STORAGE_OPS_H_
