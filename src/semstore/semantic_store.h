// Semantic store (Fig. 3, step 5.3): every RESTful query PayLess ever
// issued, together with its result tuples. The store is append-only and
// never evicts — the paper deliberately trades cheap buyer-side storage for
// not re-buying data (§3). Stored views power semantic query rewriting
// (§4.2) and the three consistency levels (§4.3).
//
// Two internal representations serve the two access patterns:
//   - the raw VIEW LIST (region + rows + epoch per call) supports epoch-
//     filtered reads for X-week consistency;
//   - a normalized COVERAGE list (merged maximal boxes) plus a deduplicated
//     per-table ROW POOL with per-dimension postings keep remainder
//     generation and cached-row retrieval fast as thousands of calls
//     accumulate.
#ifndef PAYLESS_SEMSTORE_SEMANTIC_STORE_H_
#define PAYLESS_SEMSTORE_SEMANTIC_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/geometry.h"
#include "common/value.h"

namespace payless::semstore {

/// One remembered REST call: the region of the table's constrainable-
/// attribute space the call covered, the tuples it returned, and the epoch
/// (coarse timestamp, e.g. a week counter) it was retrieved at.
struct StoredView {
  Box region;
  std::vector<Row> rows;
  int64_t epoch = 0;
};

/// Lattice point of a row in a table's constrainable-attribute space;
/// nullopt if some constrainable value is NULL or outside its domain.
std::optional<std::vector<int64_t>> RowPoint(const catalog::TableDef& def,
                                             const Row& row);

class SemanticStore {
 public:
  /// Remembers a call's region and result rows.
  void Store(const catalog::TableDef& def, Box region, std::vector<Row> rows,
             int64_t epoch);

  /// All views of a table (regardless of epoch).
  const std::vector<StoredView>& ViewsOf(const std::string& table) const;

  /// Regions of views no older than `min_epoch` (the X-week consistency
  /// filter; INT64_MIN = weak consistency, served from the normalized
  /// coverage).
  std::vector<Box> CoveredRegions(const std::string& table,
                                  int64_t min_epoch) const;

  /// True iff usable views jointly cover `region` — the table's required
  /// tuples are free, making it a "zero price relation" (Theorem 2).
  bool Covers(const catalog::TableDef& def, const Box& region,
              int64_t min_epoch) const;

  /// Deduplicated stored tuples of `def` falling inside `region`, from
  /// views no older than `min_epoch`.
  std::vector<Row> RowsInRegion(const catalog::TableDef& def,
                                const Box& region, int64_t min_epoch) const;

  size_t NumViews(const std::string& table) const;
  size_t TotalViews() const;
  size_t TotalStoredRows() const;

  void Clear();

 private:
  /// Deduplicated union of all retrieved rows of one table, with the
  /// precomputed lattice point of each row and per-dimension postings for
  /// point-constrained dimensions.
  struct TablePool {
    std::vector<Row> rows;
    std::vector<std::vector<int64_t>> points;
    std::unordered_set<Row, RowHasher> seen;
    /// postings[dim][code] -> indices of rows with that coordinate.
    std::vector<std::unordered_map<int64_t, std::vector<uint32_t>>> postings;
  };

  void AddCoverage(const std::string& table, Box region);

  std::map<std::string, std::vector<StoredView>> views_;
  std::map<std::string, std::vector<Box>> coverage_;
  std::map<std::string, TablePool> pools_;
};

}  // namespace payless::semstore

#endif  // PAYLESS_SEMSTORE_SEMANTIC_STORE_H_
