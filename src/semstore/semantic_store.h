// Semantic store (Fig. 3, step 5.3): every RESTful query PayLess ever
// issued, together with its result tuples. The store is append-only and
// never evicts — the paper deliberately trades cheap buyer-side storage for
// not re-buying data (§3). Stored views power semantic query rewriting
// (§4.2) and the three consistency levels (§4.3).
//
// Two internal representations serve the two access patterns:
//   - the raw VIEW LIST (region + rows + epoch per call) supports epoch-
//     filtered reads for X-week consistency;
//   - a normalized COVERAGE list (merged maximal boxes) plus a deduplicated
//     per-table ROW POOL with per-dimension postings keep remainder
//     generation and cached-row retrieval fast as thousands of calls
//     accumulate.
//
// Thread-safety: tables live in a hash-sharded cell map and each table's
// data is an immutable copy-on-write snapshot (common::SnapshotCell).
// Readers — Covers / RowsInRegion / CoveredRegions, the query hot path —
// take ZERO locks: one atomic snapshot load and they walk a structure that
// can never change underneath them. Writers (Store, fed by market-call
// results) serialize per table on a small writer mutex, rebuild the
// affected parts of the snapshot, and publish with a release store. Row
// chunks are shared between successive snapshots, so a Store copies O(views
// + postings) bookkeeping but not the accumulated row payload. A monotonic
// version counter ticks on every mutation; the plan-template cache keys on
// it to invalidate cached plans whenever coverage — and hence SQR costs —
// may have changed.
#ifndef PAYLESS_SEMSTORE_SEMANTIC_STORE_H_
#define PAYLESS_SEMSTORE_SEMANTIC_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/geometry.h"
#include "common/snapshot.h"
#include "common/value.h"
#include "obs/metrics.h"

namespace payless::semstore {

/// One remembered REST call: the region of the table's constrainable-
/// attribute space the call covered, the tuples it returned, and the epoch
/// (coarse timestamp, e.g. a week counter) it was retrieved at.
struct StoredView {
  Box region;
  std::vector<Row> rows;
  int64_t epoch = 0;
};

/// Lattice point of a row in a table's constrainable-attribute space;
/// nullopt if some constrainable value is NULL or outside its domain.
std::optional<std::vector<int64_t>> RowPoint(const catalog::TableDef& def,
                                             const Row& row);

/// Introspection summary of one table's stored state — the /store
/// endpoint's row, also rendered into metrics. All counters are lifetime
/// (they survive Clear; the cleared views count as evictions).
struct StoreTableStats {
  std::string table;
  size_t views = 0;           // raw stored calls
  size_t coverage_boxes = 0;  // normalized merged maximal boxes
  size_t pooled_rows = 0;     // deduplicated tuples
  int64_t approx_bytes = 0;   // rough retained payload size
  /// Fraction of the table's constrainable-attribute lattice covered by the
  /// normalized coverage (sum of box volumes / domain volume, clamped to 1
  /// since merged boxes may still overlap). -1 when no domain is known yet.
  double covered_fraction = -1.0;
  int64_t probes = 0;  // Covers + RowsInRegion lookups against this table
  int64_t hits = 0;    // probe found usable coverage / rows
  int64_t misses = 0;  // probe came back empty-handed
  int64_t min_epoch = 0;  // oldest stored view's epoch (age lower bound)
  int64_t max_epoch = 0;  // newest stored view's epoch
};

class SemanticStore {
 public:
  SemanticStore() = default;
  SemanticStore(const SemanticStore&) = delete;
  SemanticStore& operator=(const SemanticStore&) = delete;

  /// Remembers a call's region and result rows. Serializes on the table's
  /// writer mutex, publishes a fresh snapshot; bumps version().
  void Store(const catalog::TableDef& def, Box region, std::vector<Row> rows,
             int64_t epoch);

  /// All views of a table (regardless of epoch), copied out of the current
  /// snapshot. Safe under concurrent Store; introspection/tests only (the
  /// copy is deep).
  std::vector<StoredView> ViewsOf(const std::string& table) const;

  /// Regions of views no older than `min_epoch` (the X-week consistency
  /// filter; INT64_MIN = weak consistency, served from the normalized
  /// coverage). Returns a snapshot by value.
  std::vector<Box> CoveredRegions(const std::string& table,
                                  int64_t min_epoch) const;

  /// True iff usable views jointly cover `region` — the table's required
  /// tuples are free, making it a "zero price relation" (Theorem 2).
  /// Lock-free.
  bool Covers(const catalog::TableDef& def, const Box& region,
              int64_t min_epoch) const;

  /// Deduplicated stored tuples of `def` falling inside `region`, from
  /// views no older than `min_epoch`. Lock-free.
  std::vector<Row> RowsInRegion(const catalog::TableDef& def,
                                const Box& region, int64_t min_epoch) const;

  size_t NumViews(const std::string& table) const;
  size_t TotalViews() const;
  size_t TotalStoredRows() const;

  /// Names of every table with stored state, sorted. The durability
  /// snapshot iterates them (ViewsOf per table is the export).
  std::vector<std::string> TableNames() const;

  void Clear();

  /// Evicts one table's entire stored state (views, coverage, row pool),
  /// publishing an empty snapshot in its place — the placement policy's
  /// lever for staying under a capacity budget. Dropped views count as
  /// evictions; the table's lifetime probe counters survive. Bumps
  /// version() so cached plans re-optimize against the shrunk coverage.
  void DropTable(const std::string& table);

  /// Mirror probe outcomes and evictions into registry counters (pass
  /// nullptr to unbind). The store keeps its own atomics either way, so
  /// introspection works without a registry; binding only adds three
  /// relaxed increments per probe. Not thread-safe against in-flight
  /// probes: bind before serving queries.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  /// Lifetime probe outcome counters (hits + misses == probes).
  int64_t TotalProbes() const {
    return probes_.load(std::memory_order_relaxed);
  }
  int64_t TotalHits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t TotalMisses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  int64_t TotalEvictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Per-table coverage summaries, sorted by table name. Reads snapshots —
  /// safe under concurrent queries and stores.
  std::vector<StoreTableStats> SnapshotStats() const;

  /// {"version":N,"probes":N,"hits":N,"misses":N,"evictions":N,
  ///  "tables":[{...per-table stats...}]}
  std::string StatsJson() const;

  /// Monotonic mutation counter: ticks on every Store and Clear. Two equal
  /// observations bracket an interval in which coverage was unchanged, so
  /// any plan optimized in between is still cost-correct.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  /// Rows are pooled in fixed-capacity chunks so successive snapshots share
  /// all full chunks; only the open tail chunk is copied by a Store.
  static constexpr size_t kRowChunkShift = 8;
  static constexpr size_t kRowChunk = 1u << kRowChunkShift;  // 256 rows

  struct RowChunk {
    std::vector<Row> rows;
    std::vector<std::vector<int64_t>> points;  // lattice point per row
  };

  /// Immutable per-table snapshot: everything a reader needs, reachable
  /// from one acquire load. Never mutated after publication.
  struct TableData {
    std::vector<std::shared_ptr<const StoredView>> views;
    std::vector<Box> coverage;  // normalized merged maximal boxes
    std::vector<std::shared_ptr<const RowChunk>> chunks;  // dedup row pool
    size_t pooled_rows = 0;
    /// postings[dim][code] -> pool indices of rows with that coordinate.
    /// Dimensions whose whole domain is a single lattice point are not
    /// posted (dim_posted[d] == 0): their one bucket would mirror the
    /// entire pool — copied on every snapshot, selective never.
    std::vector<std::unordered_map<int64_t, std::vector<uint32_t>>> postings;
    std::vector<uint8_t> dim_posted;
    int64_t approx_bytes = 0;   // accumulated at Store time
    int64_t domain_volume = 0;  // lattice size, learned from the TableDef
    int64_t min_epoch = 0;      // oldest / newest stored view epochs
    int64_t max_epoch = 0;

    const Row& PooledRow(size_t i) const {
      return chunks[i >> kRowChunkShift]->rows[i & (kRowChunk - 1)];
    }
    const std::vector<int64_t>& PooledPoint(size_t i) const {
      return chunks[i >> kRowChunkShift]->points[i & (kRowChunk - 1)];
    }
  };

  /// One table's cell: the published snapshot and lifetime probe counters.
  /// Writer-side dedup probes the postings index of the snapshot under
  /// construction, so no separate seen-set (with its second copy of every
  /// pooled row) is kept.
  struct TableCell {
    TableCell() { data.Store(std::make_shared<const TableData>()); }

    std::mutex write_mutex;  // serializes Store on this table
    common::SnapshotCell<TableData> data;
    mutable std::atomic<int64_t> probes{0};
    mutable std::atomic<int64_t> hits{0};
    mutable std::atomic<int64_t> misses{0};
  };

  static void AddCoverage(std::vector<Box>* coverage, Box region);

  /// Views usable under `min_epoch`, as regions (weak consistency reads the
  /// normalized coverage instead — see IsCoveredUnder for the alloc-free
  /// variant used by Covers).
  static std::vector<Box> CoveredRegionsOf(const TableData& data,
                                           int64_t min_epoch);
  static bool IsCoveredUnder(const TableData& data, const Box& region,
                             int64_t min_epoch);

  /// RowsInRegion without the probe accounting (the public wrapper counts).
  std::vector<Row> RowsInRegionImpl(const catalog::TableDef& def,
                                    const Box& region,
                                    int64_t min_epoch) const;

  /// Classify one probe outcome into the table's and the store's counters
  /// (and the bound registry counters, when any).
  void CountProbe(const TableCell* cell, bool hit) const;

  common::ShardedCellMap<TableCell> cells_;
  std::atomic<uint64_t> version_{0};

  mutable std::atomic<int64_t> probes_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<obs::Counter*> hits_metric_{nullptr};
  std::atomic<obs::Counter*> misses_metric_{nullptr};
  std::atomic<obs::Counter*> evictions_metric_{nullptr};
};

}  // namespace payless::semstore

#endif  // PAYLESS_SEMSTORE_SEMANTIC_STORE_H_
