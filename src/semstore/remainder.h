// Remainder-query generation for semantic query rewriting (§4.2).
//
// Given a query footprint Q over one market table and the regions V of the
// stored RESTful queries, the data still to buy is V̄ = Q \ ∪V. Because the
// market's access interface cannot express disjunctions, V̄ must be covered
// by a set of box-shaped remainder queries — and §4.2's key observation is
// that the cheapest cover may OVERLAP stored regions (re-downloading a few
// already-owned tuples can save a whole transaction page).
//
// The pipeline mirrors the paper exactly:
//   1. decompose V̄ into disjoint elementary boxes (the grid induced by the
//      corners of Q and the stored views — Fig. 7c);
//   2. Algorithm 1: enumerate candidate bounding boxes from the per-
//      dimension separator sets, pruning (rule 1) non-minimal boxes and
//      (rule 2) boxes costing no less than their member elementary boxes;
//   3. pick the cheapest complete cover with Chvátal's greedy weighted
//      set-cover heuristic [22].
//
// Per-dimension modes capture the access-pattern legality rules:
//   - numeric dims allow any sub-range (Fig. 7);
//   - categorical dims allow a single value or the whole domain (Fig. 8);
//   - bind-join dims allow single known binding values, ranges spanning
//     known values, or the whole domain — never ranges relying on unknown
//     values (Fig. 9).
#ifndef PAYLESS_SEMSTORE_REMAINDER_H_
#define PAYLESS_SEMSTORE_REMAINDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace payless::semstore {

/// How candidate bounding-box extents may be chosen on one dimension.
struct DimSpec {
  enum class Mode {
    kNumeric,      // any sub-range between separators
    kCategorical,  // a single value or the whole domain
    kValueSet,     // bind dim: known values / runs of known values / domain
  };

  Mode mode = Mode::kNumeric;
  /// Full attribute domain (categorical dims: [0, n-1] of codes).
  Interval domain;
  /// kValueSet only: the known binding values (codes), sorted ascending.
  std::vector<int64_t> known_values;
  /// kValueSet only: whether the whole-domain extent is issuable (the bind
  /// attribute is kFree rather than kBound).
  bool whole_domain_allowed = false;
};

struct RemainderOptions {
  bool prune_minimal = true;  // Algorithm 1, pruning rule 1
  bool prune_price = true;    // Algorithm 1, pruning rule 2
  int64_t tuples_per_transaction = 100;
  /// Categorical dims wider than this many values are not refined to single
  /// values; candidates there are whole-domain only (guards grid blowup).
  size_t max_categorical_values = 64;
  /// Guards on combinatorial size; on overflow the generator degrades to
  /// covering with the elementary boxes themselves (always correct).
  size_t max_cells = 100000;
  size_t max_candidates = 500000;
};

/// Instrumentation for Fig. 15 (bounding-box pruning effectiveness).
struct RemainderCounters {
  size_t elementary_boxes = 0;
  size_t enumerated_boxes = 0;  // all candidates constructed ("No Pruning")
  size_t kept_boxes = 0;        // survivors of both pruning rules
  size_t cover_boxes = 0;       // chosen by the set cover
};

struct RemainderResult {
  /// True iff the stored views already cover Q — zero remainder, zero price.
  bool fully_covered = false;
  /// The remainder queries to issue (disjointness NOT guaranteed — overlaps
  /// are deliberate when they save transactions).
  std::vector<Box> remainder_boxes;
  /// Estimated total transactions of the remainder queries.
  int64_t estimated_transactions = 0;
  RemainderCounters counters;
};

/// Row-count oracle for a box (backed by StatsRegistry in production,
/// arbitrary in tests).
using BoxEstimator = std::function<double(const Box&)>;

/// Expected transactions to download an estimated `rows` rows (never 0: a
/// remainder query must be issued even if statistics predict it is empty —
/// only the market knows for sure).
int64_t EstimatedTransactions(double rows, int64_t tuples_per_transaction);

/// Core entry point. `query` is Q (already clipped to the table's domains);
/// `stored` are the usable stored-view regions; `dims` has one spec per
/// region dimension. For kValueSet dims, `query.dim(d)` must span the known
/// values' range; only the known-value slabs are treated as requested.
RemainderResult GenerateRemainder(const Box& query,
                                  const std::vector<Box>& stored,
                                  const std::vector<DimSpec>& dims,
                                  const BoxEstimator& estimate,
                                  const RemainderOptions& options);

}  // namespace payless::semstore

#endif  // PAYLESS_SEMSTORE_REMAINDER_H_
