#include "semstore/remainder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

namespace payless::semstore {

namespace {

// An elementary box (uncovered cell) with its estimated download price.
struct Cell {
  Box box;
  int64_t price = 1;
};

// A candidate remainder query: the box, its price, and the cells it covers.
struct Candidate {
  Box box;
  int64_t price = 1;
  std::vector<size_t> cells;
};

// Splits `piece` along the per-dimension boundary values (half-open
// boundaries b: cut between b-1 and b). Appends the fragments to `out`.
// Returns false when the fragment budget is exhausted.
bool SplitByBoundaries(const Box& piece,
                       const std::vector<std::vector<int64_t>>& boundaries,
                       size_t max_cells, std::vector<Box>* out) {
  std::vector<Box> current = {piece};
  for (size_t d = 0; d < piece.num_dims(); ++d) {
    std::vector<Box> next;
    for (const Box& box : current) {
      const Interval extent = box.dim(d);
      int64_t lo = extent.lo;
      for (const int64_t b : boundaries[d]) {
        if (b <= lo || b > extent.hi) continue;
        Box fragment = box;
        fragment.dim(d) = Interval(lo, b - 1);
        next.push_back(std::move(fragment));
        lo = b;
      }
      Box last = box;
      last.dim(d) = Interval(lo, extent.hi);
      next.push_back(std::move(last));
      if (next.size() + out->size() > max_cells) return false;
    }
    current = std::move(next);
  }
  out->insert(out->end(), std::make_move_iterator(current.begin()),
              std::make_move_iterator(current.end()));
  return out->size() <= max_cells;
}

// Smallest legal extent on dimension `d` that contains `tight`. Legality
// follows the access-pattern rules for the dimension's mode.
Interval TightValidExtent(const DimSpec& dim, const Interval& tight) {
  switch (dim.mode) {
    case DimSpec::Mode::kNumeric:
      return tight;
    case DimSpec::Mode::kCategorical:
      if (tight.Width() <= 1) return tight;
      return dim.domain;  // multi-value categorical => whole domain only
    case DimSpec::Mode::kValueSet: {
      // Snap endpoints outward to known binding values.
      const std::vector<int64_t>& vals = dim.known_values;
      auto lo_it = std::upper_bound(vals.begin(), vals.end(), tight.lo);
      auto hi_it = std::lower_bound(vals.begin(), vals.end(), tight.hi);
      const int64_t lo = lo_it == vals.begin() ? vals.front() : *(lo_it - 1);
      const int64_t hi = hi_it == vals.end() ? vals.back() : *hi_it;
      return Interval(std::min(lo, tight.lo), std::max(hi, tight.hi));
    }
  }
  return tight;
}

// Legal single-call expansion of an arbitrary box (used for fallback
// singleton candidates): widens illegal extents to the whole domain.
Box ValidExpansion(const Box& box, const std::vector<DimSpec>& dims) {
  Box out = box;
  for (size_t d = 0; d < dims.size(); ++d) {
    const Interval extent = out.dim(d);
    switch (dims[d].mode) {
      case DimSpec::Mode::kNumeric:
        break;
      case DimSpec::Mode::kCategorical:
        if (extent.Width() > 1 && !(extent == dims[d].domain)) {
          out.dim(d) = dims[d].domain;
        }
        break;
      case DimSpec::Mode::kValueSet:
        break;  // cells live on single-value slabs: already legal
    }
  }
  return out;
}

}  // namespace

int64_t EstimatedTransactions(double rows, int64_t tuples_per_transaction) {
  if (rows < 0.0) rows = 0.0;
  const int64_t txn = static_cast<int64_t>(
      std::ceil(rows / static_cast<double>(tuples_per_transaction)));
  return txn < 1 ? 1 : txn;
}

RemainderResult GenerateRemainder(const Box& query,
                                  const std::vector<Box>& stored,
                                  const std::vector<DimSpec>& dims,
                                  const BoxEstimator& estimate,
                                  const RemainderOptions& options) {
  assert(query.num_dims() == dims.size());
  RemainderResult result;
  if (query.empty()) {
    result.fully_covered = true;
    return result;
  }

  // ---- Requested region: for kValueSet dims only the known-value slabs are
  // wanted; other dims want the full query extent.
  std::vector<Box> requested = {query};
  for (size_t d = 0; d < dims.size(); ++d) {
    if (dims[d].mode != DimSpec::Mode::kValueSet) continue;
    std::vector<Box> next;
    for (const Box& box : requested) {
      for (const int64_t v : dims[d].known_values) {
        if (!box.dim(d).Contains(v)) continue;
        Box slab = box;
        slab.dim(d) = Interval::Point(v);
        next.push_back(std::move(slab));
      }
    }
    requested = std::move(next);
  }
  if (requested.empty()) {
    result.fully_covered = true;  // no binding values => nothing to fetch
    return result;
  }

  // ---- Holes: stored regions clipped to the query.
  std::vector<Box> holes;
  for (const Box& v : stored) {
    const Box clipped = v.Intersect(query);
    if (!clipped.empty()) holes.push_back(clipped);
  }

  // ---- V̄ as disjoint pieces.
  std::vector<Box> uncovered;
  for (const Box& want : requested) {
    for (Box& piece : SubtractAll(want, holes)) {
      uncovered.push_back(std::move(piece));
    }
  }
  if (uncovered.empty()) {
    result.fully_covered = true;
    return result;
  }

  // ---- Separator boundaries per dimension (half-open cut positions).
  std::vector<std::vector<int64_t>> boundaries(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    std::set<int64_t> cuts;
    cuts.insert(query.dim(d).lo);
    cuts.insert(query.dim(d).hi + 1);
    for (const Box& hole : holes) {
      cuts.insert(hole.dim(d).lo);
      cuts.insert(hole.dim(d).hi + 1);
    }
    if (dims[d].mode == DimSpec::Mode::kCategorical &&
        static_cast<size_t>(query.dim(d).Width()) <=
            options.max_categorical_values) {
      for (int64_t v = query.dim(d).lo; v <= query.dim(d).hi; ++v) {
        cuts.insert(v);
      }
    }
    if (dims[d].mode == DimSpec::Mode::kValueSet) {
      for (const int64_t v : dims[d].known_values) {
        cuts.insert(v);
        cuts.insert(v + 1);
      }
    }
    boundaries[d].assign(cuts.begin(), cuts.end());
  }

  // ---- Elementary boxes: uncovered pieces refined to the separator grid.
  std::vector<Box> cell_boxes;
  bool grid_ok = true;
  for (const Box& piece : uncovered) {
    if (!SplitByBoundaries(piece, boundaries, options.max_cells,
                           &cell_boxes)) {
      grid_ok = false;
      break;
    }
  }
  if (!grid_ok) {
    // Degraded mode: cover with the (legalized) uncovered pieces directly.
    for (const Box& piece : uncovered) {
      Box legal = ValidExpansion(piece, dims);
      result.remainder_boxes.push_back(legal);
      result.estimated_transactions += EstimatedTransactions(
          estimate(legal), options.tuples_per_transaction);
    }
    result.counters.elementary_boxes = uncovered.size();
    result.counters.cover_boxes = result.remainder_boxes.size();
    return result;
  }

  std::vector<Cell> cells;
  cells.reserve(cell_boxes.size());
  for (Box& box : cell_boxes) {
    Cell cell;
    cell.price =
        EstimatedTransactions(estimate(box), options.tuples_per_transaction);
    cell.box = std::move(box);
    cells.push_back(std::move(cell));
  }
  result.counters.elementary_boxes = cells.size();

  // ---- Candidate extents per dimension.
  std::vector<std::vector<Interval>> extents(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    const std::vector<int64_t>& cuts = boundaries[d];
    std::vector<Interval>& list = extents[d];
    switch (dims[d].mode) {
      case DimSpec::Mode::kNumeric:
        for (size_t a = 0; a + 1 < cuts.size(); ++a) {
          for (size_t b = a + 1; b < cuts.size(); ++b) {
            list.emplace_back(cuts[a], cuts[b] - 1);
          }
        }
        break;
      case DimSpec::Mode::kCategorical: {
        const Interval q = query.dim(d);
        if (static_cast<size_t>(q.Width()) <= options.max_categorical_values) {
          for (int64_t v = q.lo; v <= q.hi; ++v) {
            list.push_back(Interval::Point(v));
          }
        }
        // The whole-extent candidate: legal when it is a single value or the
        // entire domain ("one value or the whole domain", Fig. 8).
        if (q.Width() > 1 && q == dims[d].domain) list.push_back(q);
        break;
      }
      case DimSpec::Mode::kValueSet: {
        const std::vector<int64_t>& vals = dims[d].known_values;
        for (size_t i = 0; i < vals.size(); ++i) {
          for (size_t j = i; j < vals.size(); ++j) {
            list.emplace_back(vals[i], vals[j]);
          }
        }
        if (dims[d].whole_domain_allowed &&
            !(vals.size() == 1 && Interval::Point(vals[0]) == dims[d].domain)) {
          list.push_back(dims[d].domain);
        }
        break;
      }
    }
    if (list.empty()) list.push_back(query.dim(d));  // degenerate fallback
  }

  // ---- Enumerate candidates (cartesian product of per-dim extents) with
  // the two pruning rules of Algorithm 1.
  size_t product_size = 1;
  bool enumerable = true;
  for (const std::vector<Interval>& list : extents) {
    if (product_size > options.max_candidates / std::max<size_t>(1, list.size())) {
      enumerable = false;
      break;
    }
    product_size *= list.size();
  }

  std::vector<Candidate> kept;
  if (enumerable) {
    std::vector<size_t> idx(dims.size(), 0);
    while (true) {
      Box candidate_box = query;  // shape only; extents overwritten below
      for (size_t d = 0; d < dims.size(); ++d) {
        candidate_box.dim(d) = extents[d][idx[d]];
      }
      ++result.counters.enumerated_boxes;

      std::vector<size_t> contained;
      for (size_t c = 0; c < cells.size(); ++c) {
        if (candidate_box.Contains(cells[c].box)) contained.push_back(c);
      }
      bool keep = !contained.empty();

      if (keep && options.prune_minimal) {
        // Pruning rule 1: only minimum (tight, up to legality) boxes stay.
        for (size_t d = 0; d < dims.size() && keep; ++d) {
          int64_t lo = std::numeric_limits<int64_t>::max();
          int64_t hi = std::numeric_limits<int64_t>::min();
          for (const size_t c : contained) {
            lo = std::min(lo, cells[c].box.dim(d).lo);
            hi = std::max(hi, cells[c].box.dim(d).hi);
          }
          const Interval tight =
              TightValidExtent(dims[d], Interval(lo, hi));
          if (!(candidate_box.dim(d) == tight)) keep = false;
        }
      }

      int64_t price = 0;
      if (keep) {
        price = EstimatedTransactions(estimate(candidate_box),
                                      options.tuples_per_transaction);
        if (options.prune_price) {
          // Pruning rule 2: the box must beat buying its members separately.
          int64_t member_sum = 0;
          for (const size_t c : contained) member_sum += cells[c].price;
          if (contained.size() > 1 && price >= member_sum) keep = false;
        }
      }

      if (keep) {
        Candidate cand;
        cand.box = candidate_box;
        cand.price = price;
        cand.cells = std::move(contained);
        kept.push_back(std::move(cand));
      }

      // Advance the mixed-radix counter.
      size_t d = 0;
      while (d < dims.size() && ++idx[d] == extents[d].size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == dims.size()) break;
    }
  }
  result.counters.kept_boxes = kept.size();

  // ---- Guarantee feasibility: each cell's legalized singleton is always an
  // available candidate (the paper's elementary boxes are themselves
  // retrievable remainder queries).
  for (size_t c = 0; c < cells.size(); ++c) {
    Candidate single;
    single.box = ValidExpansion(cells[c].box, dims);
    if (single.box == cells[c].box) {
      single.price = cells[c].price;
      single.cells = {c};
    } else {
      single.price = EstimatedTransactions(estimate(single.box),
                                           options.tuples_per_transaction);
      for (size_t o = 0; o < cells.size(); ++o) {
        if (single.box.Contains(cells[o].box)) single.cells.push_back(o);
      }
    }
    kept.push_back(std::move(single));
  }

  // ---- Chvátal greedy weighted set cover.
  std::vector<bool> covered(cells.size(), false);
  size_t remaining = cells.size();
  std::vector<bool> used(kept.size(), false);
  while (remaining > 0) {
    double best_ratio = std::numeric_limits<double>::infinity();
    size_t best = kept.size();
    size_t best_new = 0;
    for (size_t k = 0; k < kept.size(); ++k) {
      if (used[k]) continue;
      size_t new_cells = 0;
      for (const size_t c : kept[k].cells) {
        if (!covered[c]) ++new_cells;
      }
      if (new_cells == 0) continue;
      const double ratio = static_cast<double>(kept[k].price) /
                           static_cast<double>(new_cells);
      if (ratio < best_ratio ||
          (ratio == best_ratio && new_cells > best_new)) {
        best_ratio = ratio;
        best = k;
        best_new = new_cells;
      }
    }
    assert(best < kept.size() && "set cover must be feasible");
    used[best] = true;
    for (const size_t c : kept[best].cells) {
      if (!covered[c]) {
        covered[c] = true;
        --remaining;
      }
    }
    result.remainder_boxes.push_back(kept[best].box);
    result.estimated_transactions += kept[best].price;
  }
  result.counters.cover_boxes = result.remainder_boxes.size();
  return result;
}

}  // namespace payless::semstore
