#include "semstore/semantic_store.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <sstream>

namespace payless::semstore {

std::optional<std::vector<int64_t>> RowPoint(const catalog::TableDef& def,
                                             const Row& row) {
  std::vector<int64_t> point;
  const std::vector<size_t> dims = def.ConstrainableColumns();
  point.reserve(dims.size());
  for (size_t col : dims) {
    const std::optional<int64_t> code = def.columns[col].domain.Encode(row[col]);
    if (!code.has_value()) return std::nullopt;
    point.push_back(*code);
  }
  return point;
}

namespace {

/// If `a` and `b` differ on at most one dimension and overlap or touch
/// there, returns true and writes their exact union (the hull) to `merged`.
bool TryMergeBoxes(const Box& a, const Box& b, Box* merged) {
  size_t diff_dim = a.num_dims();
  for (size_t d = 0; d < a.num_dims(); ++d) {
    if (a.dim(d) == b.dim(d)) continue;
    if (diff_dim != a.num_dims()) return false;  // differ on two dims
    diff_dim = d;
  }
  if (diff_dim == a.num_dims()) {  // identical
    *merged = a;
    return true;
  }
  const Interval& x = a.dim(diff_dim);
  const Interval& y = b.dim(diff_dim);
  // Overlapping or adjacent intervals merge into their hull exactly.
  if (x.hi + 1 < y.lo || y.hi + 1 < x.lo) return false;
  *merged = a;
  merged->dim(diff_dim) =
      Interval(std::min(x.lo, y.lo), std::max(x.hi, y.hi));
  return true;
}

/// Rough retained size of one row: variant overhead plus string payloads.
int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = 0;
  for (const Value& value : row) {
    bytes += 16;
    if (value.is_string()) {
      bytes += static_cast<int64_t>(value.AsString().size());
    }
  }
  return bytes;
}

/// Lattice size of the table's constrainable-attribute space, saturating
/// on overflow (astronomically large domains just read as fraction ~0).
int64_t DomainVolume(const catalog::TableDef& def) {
  long double volume = 1.0L;
  for (size_t col : def.ConstrainableColumns()) {
    volume *= static_cast<long double>(def.columns[col].domain.size());
  }
  constexpr long double kMax =
      static_cast<long double>(std::numeric_limits<int64_t>::max());
  if (volume >= kMax) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(volume);
}

}  // namespace

SemanticStore::TableState* SemanticStore::GetOrCreateState(
    const std::string& table) {
  {
    std::shared_lock<std::shared_mutex> lock(states_mutex_);
    const auto it = states_.find(table);
    if (it != states_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(states_mutex_);
  std::unique_ptr<TableState>& slot = states_[table];
  if (slot == nullptr) slot = std::make_unique<TableState>();
  return slot.get();
}

const SemanticStore::TableState* SemanticStore::FindState(
    const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(states_mutex_);
  const auto it = states_.find(table);
  return it == states_.end() ? nullptr : it->second.get();
}

void SemanticStore::AddCoverageLocked(TableState* state, Box region) {
  std::vector<Box>& list = state->coverage;
  for (const Box& box : list) {
    if (box.Contains(region)) return;
  }
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (size_t i = 0; i < list.size(); ++i) {
      Box merged;
      if (TryMergeBoxes(region, list[i], &merged)) {
        region = std::move(merged);
        list.erase(list.begin() + static_cast<ptrdiff_t>(i));
        merged_any = true;
        break;
      }
    }
  }
  // Merging may have grown the region past boxes it now subsumes.
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  list.push_back(std::move(region));
}

void SemanticStore::Store(const catalog::TableDef& def, Box region,
                          std::vector<Row> rows, int64_t epoch) {
  if (region.empty()) return;
  TableState* state = GetOrCreateState(def.name);
  std::unique_lock<std::shared_mutex> lock(state->mutex);
  AddCoverageLocked(state, region);
  if (state->domain_volume == 0) state->domain_volume = DomainVolume(def);
  for (const Row& row : rows) state->approx_bytes += ApproxRowBytes(row);
  if (state->views.empty()) {
    state->min_epoch = epoch;
    state->max_epoch = epoch;
  } else {
    state->min_epoch = std::min(state->min_epoch, epoch);
    state->max_epoch = std::max(state->max_epoch, epoch);
  }

  TablePool& pool = state->pool;
  const size_t num_dims = def.ConstrainableColumns().size();
  if (pool.postings.empty()) pool.postings.resize(num_dims);
  for (const Row& row : rows) {
    if (pool.seen.count(row) > 0) continue;
    std::optional<std::vector<int64_t>> point = RowPoint(def, row);
    if (!point.has_value()) continue;  // outside domains: unreachable anyway
    const uint32_t index = static_cast<uint32_t>(pool.rows.size());
    pool.seen.insert(row);
    pool.rows.push_back(row);
    for (size_t d = 0; d < num_dims; ++d) {
      pool.postings[d][(*point)[d]].push_back(index);
    }
    pool.points.push_back(std::move(*point));
  }

  state->views.push_back(
      StoredView{std::move(region), std::move(rows), epoch});
  version_.fetch_add(1, std::memory_order_release);
}

const std::vector<StoredView>& SemanticStore::ViewsOf(
    const std::string& table) const {
  static const std::vector<StoredView> kEmpty;
  const TableState* state = FindState(table);
  if (state == nullptr) return kEmpty;
  std::shared_lock<std::shared_mutex> lock(state->mutex);
  return state->views;  // reference escapes the lock: see header contract
}

std::vector<Box> SemanticStore::CoveredRegionsLocked(const TableState& state,
                                                     int64_t min_epoch) {
  // Weak consistency (every view usable): serve the normalized coverage.
  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    return state.coverage;
  }
  std::vector<Box> out;
  out.reserve(state.views.size());
  for (const StoredView& view : state.views) {
    if (view.epoch >= min_epoch) out.push_back(view.region);
  }
  return out;
}

std::vector<Box> SemanticStore::CoveredRegions(const std::string& table,
                                               int64_t min_epoch) const {
  const TableState* state = FindState(table);
  if (state == nullptr) return {};
  std::shared_lock<std::shared_mutex> lock(state->mutex);
  return CoveredRegionsLocked(*state, min_epoch);
}

void SemanticStore::CountProbe(const TableState* state, bool hit) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  if (state != nullptr) {
    state->probes.fetch_add(1, std::memory_order_relaxed);
    (hit ? state->hits : state->misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
  obs::Counter* metric = (hit ? hits_metric_ : misses_metric_)
                             .load(std::memory_order_relaxed);
  if (metric != nullptr) metric->Add(1);
}

bool SemanticStore::Covers(const catalog::TableDef& def, const Box& region,
                           int64_t min_epoch) const {
  if (region.empty()) {
    CountProbe(nullptr, /*hit=*/true);
    return true;
  }
  const TableState* state = FindState(def.name);
  if (state == nullptr) {
    CountProbe(nullptr, /*hit=*/false);
    return false;
  }
  bool covered;
  {
    std::shared_lock<std::shared_mutex> lock(state->mutex);
    covered = IsCovered(region, CoveredRegionsLocked(*state, min_epoch));
  }
  CountProbe(state, covered);
  return covered;
}

std::vector<Row> SemanticStore::RowsInRegion(const catalog::TableDef& def,
                                             const Box& region,
                                             int64_t min_epoch) const {
  std::vector<Row> out = RowsInRegionImpl(def, region, min_epoch);
  const TableState* state = region.empty() ? nullptr : FindState(def.name);
  CountProbe(state, /*hit=*/!out.empty());
  return out;
}

std::vector<Row> SemanticStore::RowsInRegionImpl(const catalog::TableDef& def,
                                                 const Box& region,
                                                 int64_t min_epoch) const {
  std::vector<Row> out;
  if (region.empty()) return out;
  const TableState* state = FindState(def.name);
  if (state == nullptr) return out;
  std::shared_lock<std::shared_mutex> lock(state->mutex);

  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    // Weak consistency: serve from the deduplicated pool. Use the postings
    // of the most selective narrow dimension when one exists.
    const TablePool& pool = state->pool;

    size_t best_dim = region.num_dims();
    int64_t best_width = std::numeric_limits<int64_t>::max();
    for (size_t d = 0; d < region.num_dims(); ++d) {
      const int64_t width = region.dim(d).Width();
      if (width < best_width) {
        best_width = width;
        best_dim = d;
      }
    }
    const bool use_postings =
        best_dim < region.num_dims() && best_width <= 64 &&
        best_dim < pool.postings.size();
    if (use_postings) {
      // Capacity hint: the postings on the narrow dimension bound the
      // candidate count from above.
      size_t candidates = 0;
      for (int64_t code = region.dim(best_dim).lo;
           code <= region.dim(best_dim).hi; ++code) {
        const auto post_it = pool.postings[best_dim].find(code);
        if (post_it != pool.postings[best_dim].end()) {
          candidates += post_it->second.size();
        }
      }
      out.reserve(candidates);
      for (int64_t code = region.dim(best_dim).lo;
           code <= region.dim(best_dim).hi; ++code) {
        const auto post_it = pool.postings[best_dim].find(code);
        if (post_it == pool.postings[best_dim].end()) continue;
        for (const uint32_t i : post_it->second) {
          if (region.Contains(pool.points[i])) out.push_back(pool.rows[i]);
        }
      }
    } else {
      out.reserve(pool.rows.size());
      for (size_t i = 0; i < pool.rows.size(); ++i) {
        if (region.Contains(pool.points[i])) out.push_back(pool.rows[i]);
      }
    }
    return out;
  }

  // Epoch-filtered (X-week consistency) path: scan usable views newest-
  // first, deduplicating identical tuples.
  std::vector<const StoredView*> usable;
  usable.reserve(state->views.size());
  size_t candidate_rows = 0;
  for (const StoredView& view : state->views) {
    if (view.epoch >= min_epoch && view.region.Overlaps(region)) {
      usable.push_back(&view);
      candidate_rows += view.rows.size();
    }
  }
  std::stable_sort(usable.begin(), usable.end(),
                   [](const StoredView* a, const StoredView* b) {
                     return a->epoch > b->epoch;
                   });
  std::unordered_set<Row, RowHasher> seen;
  seen.reserve(candidate_rows);
  out.reserve(candidate_rows);
  for (const StoredView* view : usable) {
    for (const Row& row : view->rows) {
      const std::optional<std::vector<int64_t>> point = RowPoint(def, row);
      if (!point.has_value() || !region.Contains(*point)) continue;
      if (seen.insert(row).second) out.push_back(row);
    }
  }
  return out;
}

size_t SemanticStore::NumViews(const std::string& table) const {
  const TableState* state = FindState(table);
  if (state == nullptr) return 0;
  std::shared_lock<std::shared_mutex> lock(state->mutex);
  return state->views.size();
}

size_t SemanticStore::TotalViews() const {
  std::shared_lock<std::shared_mutex> states_lock(states_mutex_);
  size_t total = 0;
  for (const auto& [_, state] : states_) {
    std::shared_lock<std::shared_mutex> lock(state->mutex);
    total += state->views.size();
  }
  return total;
}

size_t SemanticStore::TotalStoredRows() const {
  std::shared_lock<std::shared_mutex> states_lock(states_mutex_);
  size_t total = 0;
  for (const auto& [_, state] : states_) {
    std::shared_lock<std::shared_mutex> lock(state->mutex);
    for (const StoredView& view : state->views) total += view.rows.size();
  }
  return total;
}

void SemanticStore::Clear() {
  std::unique_lock<std::shared_mutex> lock(states_mutex_);
  int64_t dropped = 0;
  for (const auto& [_, state] : states_) {
    dropped += static_cast<int64_t>(state->views.size());
  }
  states_.clear();
  version_.fetch_add(1, std::memory_order_release);
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    obs::Counter* metric = evictions_metric_.load(std::memory_order_relaxed);
    if (metric != nullptr) metric->Add(dropped);
  }
}

void SemanticStore::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                                obs::Counter* evictions) {
  hits_metric_.store(hits, std::memory_order_relaxed);
  misses_metric_.store(misses, std::memory_order_relaxed);
  evictions_metric_.store(evictions, std::memory_order_relaxed);
}

std::vector<StoreTableStats> SemanticStore::SnapshotStats() const {
  std::shared_lock<std::shared_mutex> states_lock(states_mutex_);
  std::vector<StoreTableStats> out;
  out.reserve(states_.size());
  for (const auto& [table, state] : states_) {
    StoreTableStats stats;
    stats.table = table;
    stats.probes = state->probes.load(std::memory_order_relaxed);
    stats.hits = state->hits.load(std::memory_order_relaxed);
    stats.misses = state->misses.load(std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(state->mutex);
    stats.views = state->views.size();
    stats.coverage_boxes = state->coverage.size();
    stats.pooled_rows = state->pool.rows.size();
    stats.approx_bytes = state->approx_bytes;
    stats.min_epoch = state->min_epoch;
    stats.max_epoch = state->max_epoch;
    if (state->domain_volume > 0) {
      double covered = 0.0;
      for (const Box& box : state->coverage) {
        covered += static_cast<double>(box.Volume());
      }
      stats.covered_fraction =
          std::min(1.0, covered / static_cast<double>(state->domain_volume));
    }
    out.push_back(std::move(stats));
  }
  return out;
}

std::string SemanticStore::StatsJson() const {
  const std::vector<StoreTableStats> tables = SnapshotStats();
  std::ostringstream os;
  os << "{\"version\":" << version() << ",\"probes\":" << TotalProbes()
     << ",\"hits\":" << TotalHits() << ",\"misses\":" << TotalMisses()
     << ",\"evictions\":" << TotalEvictions() << ",\"tables\":[";
  bool first = true;
  for (const StoreTableStats& t : tables) {
    if (!first) os << ",";
    first = false;
    os << "{\"table\":\"" << t.table << "\",\"views\":" << t.views
       << ",\"coverage_boxes\":" << t.coverage_boxes
       << ",\"pooled_rows\":" << t.pooled_rows
       << ",\"approx_bytes\":" << t.approx_bytes << ",\"covered_fraction\":";
    if (t.covered_fraction < 0) {
      os << "null";
    } else {
      os << t.covered_fraction;
    }
    os << ",\"probes\":" << t.probes << ",\"hits\":" << t.hits
       << ",\"misses\":" << t.misses << ",\"min_epoch\":" << t.min_epoch
       << ",\"max_epoch\":" << t.max_epoch << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace payless::semstore
