#include "semstore/semantic_store.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <sstream>

namespace payless::semstore {

std::optional<std::vector<int64_t>> RowPoint(const catalog::TableDef& def,
                                             const Row& row) {
  std::vector<int64_t> point;
  const std::vector<size_t> dims = def.ConstrainableColumns();
  point.reserve(dims.size());
  for (size_t col : dims) {
    const std::optional<int64_t> code = def.columns[col].domain.Encode(row[col]);
    if (!code.has_value()) return std::nullopt;
    point.push_back(*code);
  }
  return point;
}

namespace {

/// If `a` and `b` differ on at most one dimension and overlap or touch
/// there, returns true and writes their exact union (the hull) to `merged`.
bool TryMergeBoxes(const Box& a, const Box& b, Box* merged) {
  size_t diff_dim = a.num_dims();
  for (size_t d = 0; d < a.num_dims(); ++d) {
    if (a.dim(d) == b.dim(d)) continue;
    if (diff_dim != a.num_dims()) return false;  // differ on two dims
    diff_dim = d;
  }
  if (diff_dim == a.num_dims()) {  // identical
    *merged = a;
    return true;
  }
  const Interval& x = a.dim(diff_dim);
  const Interval& y = b.dim(diff_dim);
  // Overlapping or adjacent intervals merge into their hull exactly.
  if (x.hi + 1 < y.lo || y.hi + 1 < x.lo) return false;
  *merged = a;
  merged->dim(diff_dim) =
      Interval(std::min(x.lo, y.lo), std::max(x.hi, y.hi));
  return true;
}

/// Rough retained size of one row: variant overhead plus string payloads.
int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = 0;
  for (const Value& value : row) {
    bytes += 16;
    if (value.is_string()) {
      bytes += static_cast<int64_t>(value.AsString().size());
    }
  }
  return bytes;
}

/// Lattice size of the table's constrainable-attribute space, saturating
/// on overflow (astronomically large domains just read as fraction ~0).
int64_t DomainVolume(const catalog::TableDef& def) {
  long double volume = 1.0L;
  for (size_t col : def.ConstrainableColumns()) {
    volume *= static_cast<long double>(def.columns[col].domain.size());
  }
  constexpr long double kMax =
      static_cast<long double>(std::numeric_limits<int64_t>::max());
  if (volume >= kMax) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(volume);
}

}  // namespace

void SemanticStore::AddCoverage(std::vector<Box>* coverage, Box region) {
  std::vector<Box>& list = *coverage;
  for (const Box& box : list) {
    if (box.Contains(region)) return;
  }
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (size_t i = 0; i < list.size(); ++i) {
      Box merged;
      if (TryMergeBoxes(region, list[i], &merged)) {
        region = std::move(merged);
        list.erase(list.begin() + static_cast<ptrdiff_t>(i));
        merged_any = true;
        break;
      }
    }
  }
  // Merging may have grown the region past boxes it now subsumes.
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  list.push_back(std::move(region));
}

void SemanticStore::Store(const catalog::TableDef& def, Box region,
                          std::vector<Row> rows, int64_t epoch) {
  if (region.empty()) return;
  const std::shared_ptr<TableCell> cell = cells_.GetOrCreate(def.name);
  std::lock_guard<std::mutex> lock(cell->write_mutex);

  const std::shared_ptr<const TableData> old = cell->data.Load();
  auto next = std::make_shared<TableData>(*old);  // shares row chunks
  AddCoverage(&next->coverage, region);
  if (next->domain_volume == 0) next->domain_volume = DomainVolume(def);
  for (const Row& row : rows) next->approx_bytes += ApproxRowBytes(row);
  if (next->views.empty()) {
    next->min_epoch = epoch;
    next->max_epoch = epoch;
  } else {
    next->min_epoch = std::min(next->min_epoch, epoch);
    next->max_epoch = std::max(next->max_epoch, epoch);
  }

  const std::vector<size_t> dims = def.ConstrainableColumns();
  const size_t num_dims = dims.size();
  if (next->postings.empty()) {
    next->postings.resize(num_dims);
    next->dim_posted.resize(num_dims);
    for (size_t d = 0; d < num_dims; ++d) {
      next->dim_posted[d] =
          def.columns[dims[d]].domain.ToInterval().Width() > 1 ? 1 : 0;
    }
  }
  // Duplicate probe against the postings under construction: a pooled copy
  // of `row` would be posted under every one of its coordinates, so the
  // smallest bucket of its point decides (empty bucket on any posted dim
  // means absent). In-batch duplicates are caught too — postings grow as
  // the batch appends. No hashed seen-set, no second copy of the pool.
  const auto pooled_duplicate = [&](const std::vector<int64_t>& point,
                                    const Row& row) {
    const std::vector<uint32_t>* bucket = nullptr;
    for (size_t d = 0; d < num_dims; ++d) {
      if (next->dim_posted[d] == 0) continue;
      const auto it = next->postings[d].find(point[d]);
      if (it == next->postings[d].end() || it->second.empty()) return false;
      if (bucket == nullptr || it->second.size() < bucket->size()) {
        bucket = &it->second;
      }
    }
    if (bucket == nullptr) {  // no discriminating dimension: scan the pool
      for (size_t i = 0; i < next->pooled_rows; ++i) {
        if (next->PooledPoint(i) == point && next->PooledRow(i) == row) {
          return true;
        }
      }
      return false;
    }
    for (const uint32_t i : *bucket) {
      if (next->PooledPoint(i) == point && next->PooledRow(i) == row) {
        return true;
      }
    }
    return false;
  };
  // The open (non-full) tail chunk may be referenced by the previous
  // snapshot, so appends go to a private copy of it; full chunks are shared
  // between snapshots untouched.
  std::shared_ptr<RowChunk> open;
  if (!next->chunks.empty() && next->chunks.back()->rows.size() < kRowChunk) {
    open = std::make_shared<RowChunk>(*next->chunks.back());
    next->chunks.back() = open;
  }
  for (const Row& row : rows) {
    std::optional<std::vector<int64_t>> point = RowPoint(def, row);
    if (!point.has_value()) continue;  // outside domains: unreachable anyway
    if (pooled_duplicate(*point, row)) continue;
    const uint32_t index = static_cast<uint32_t>(next->pooled_rows);
    if (open == nullptr || open->rows.size() >= kRowChunk) {
      open = std::make_shared<RowChunk>();
      open->rows.reserve(kRowChunk);
      open->points.reserve(kRowChunk);
      next->chunks.push_back(open);
    }
    open->rows.push_back(row);
    for (size_t d = 0; d < num_dims; ++d) {
      if (next->dim_posted[d] == 0) continue;
      next->postings[d][(*point)[d]].push_back(index);
    }
    open->points.push_back(std::move(*point));
    ++next->pooled_rows;
  }

  next->views.push_back(std::make_shared<const StoredView>(
      StoredView{std::move(region), std::move(rows), epoch}));
  cell->data.Store(std::move(next));
  version_.fetch_add(1, std::memory_order_release);
}

std::vector<StoredView> SemanticStore::ViewsOf(
    const std::string& table) const {
  const std::shared_ptr<TableCell> cell = cells_.Find(table);
  if (cell == nullptr) return {};
  const std::shared_ptr<const TableData> data = cell->data.Load();
  std::vector<StoredView> out;
  out.reserve(data->views.size());
  for (const auto& view : data->views) out.push_back(*view);
  return out;
}

std::vector<Box> SemanticStore::CoveredRegionsOf(const TableData& data,
                                                 int64_t min_epoch) {
  // Weak consistency (every view usable): serve the normalized coverage.
  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    return data.coverage;
  }
  std::vector<Box> out;
  out.reserve(data.views.size());
  for (const auto& view : data.views) {
    if (view->epoch >= min_epoch) out.push_back(view->region);
  }
  return out;
}

bool SemanticStore::IsCoveredUnder(const TableData& data, const Box& region,
                                   int64_t min_epoch) {
  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    return IsCovered(region, data.coverage);
  }
  return IsCovered(region, CoveredRegionsOf(data, min_epoch));
}

std::vector<Box> SemanticStore::CoveredRegions(const std::string& table,
                                               int64_t min_epoch) const {
  const std::shared_ptr<TableCell> cell = cells_.Find(table);
  if (cell == nullptr) return {};
  return CoveredRegionsOf(*cell->data.Load(), min_epoch);
}

void SemanticStore::CountProbe(const TableCell* cell, bool hit) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  if (cell != nullptr) {
    cell->probes.fetch_add(1, std::memory_order_relaxed);
    (hit ? cell->hits : cell->misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
  obs::Counter* metric = (hit ? hits_metric_ : misses_metric_)
                             .load(std::memory_order_relaxed);
  if (metric != nullptr) metric->Add(1);
}

bool SemanticStore::Covers(const catalog::TableDef& def, const Box& region,
                           int64_t min_epoch) const {
  if (region.empty()) {
    CountProbe(nullptr, /*hit=*/true);
    return true;
  }
  const std::shared_ptr<TableCell> cell = cells_.Find(def.name);
  if (cell == nullptr) {
    CountProbe(nullptr, /*hit=*/false);
    return false;
  }
  const std::shared_ptr<const TableData> data = cell->data.Load();
  const bool covered = IsCoveredUnder(*data, region, min_epoch);
  CountProbe(cell.get(), covered);
  return covered;
}

std::vector<Row> SemanticStore::RowsInRegion(const catalog::TableDef& def,
                                             const Box& region,
                                             int64_t min_epoch) const {
  std::vector<Row> out = RowsInRegionImpl(def, region, min_epoch);
  const std::shared_ptr<TableCell> cell =
      region.empty() ? nullptr : cells_.Find(def.name);
  CountProbe(cell.get(), /*hit=*/!out.empty());
  return out;
}

std::vector<Row> SemanticStore::RowsInRegionImpl(const catalog::TableDef& def,
                                                 const Box& region,
                                                 int64_t min_epoch) const {
  std::vector<Row> out;
  if (region.empty()) return out;
  const std::shared_ptr<TableCell> cell = cells_.Find(def.name);
  if (cell == nullptr) return out;
  const std::shared_ptr<const TableData> snapshot = cell->data.Load();
  const TableData& data = *snapshot;

  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    // Weak consistency: serve from the deduplicated pool. Use the postings
    // of the most selective narrow dimension when one exists — selectivity
    // is the ACTUAL candidate count on that dimension's postings, not the
    // interval width: a one-value categorical dimension ("Country = 'US'")
    // has width 1 but may post every pooled row, while a four-station slab
    // posts a handful.
    size_t best_dim = region.num_dims();
    size_t best_candidates = std::numeric_limits<size_t>::max();
    for (size_t d = 0; d < region.num_dims() && d < data.postings.size();
         ++d) {
      if (data.dim_posted[d] == 0) continue;  // single-point domain: no index
      if (region.dim(d).Width() > 64) continue;  // too wide to enumerate
      size_t candidates = 0;
      for (int64_t code = region.dim(d).lo; code <= region.dim(d).hi;
           ++code) {
        const auto post_it = data.postings[d].find(code);
        if (post_it != data.postings[d].end()) {
          candidates += post_it->second.size();
        }
      }
      if (candidates < best_candidates) {
        best_candidates = candidates;
        best_dim = d;
      }
    }
    const bool use_postings = best_dim < region.num_dims();
    if (use_postings) {
      out.reserve(best_candidates);
      for (int64_t code = region.dim(best_dim).lo;
           code <= region.dim(best_dim).hi; ++code) {
        const auto post_it = data.postings[best_dim].find(code);
        if (post_it == data.postings[best_dim].end()) continue;
        for (const uint32_t i : post_it->second) {
          if (region.Contains(data.PooledPoint(i))) {
            out.push_back(data.PooledRow(i));
          }
        }
      }
    } else {
      out.reserve(data.pooled_rows);
      for (size_t i = 0; i < data.pooled_rows; ++i) {
        if (region.Contains(data.PooledPoint(i))) {
          out.push_back(data.PooledRow(i));
        }
      }
    }
    return out;
  }

  // Epoch-filtered (X-week consistency) path: scan usable views newest-
  // first, deduplicating identical tuples.
  std::vector<const StoredView*> usable;
  usable.reserve(data.views.size());
  size_t candidate_rows = 0;
  for (const auto& view : data.views) {
    if (view->epoch >= min_epoch && view->region.Overlaps(region)) {
      usable.push_back(view.get());
      candidate_rows += view->rows.size();
    }
  }
  std::stable_sort(usable.begin(), usable.end(),
                   [](const StoredView* a, const StoredView* b) {
                     return a->epoch > b->epoch;
                   });
  std::unordered_set<Row, RowHasher> seen;
  seen.reserve(candidate_rows);
  out.reserve(candidate_rows);
  for (const StoredView* view : usable) {
    for (const Row& row : view->rows) {
      const std::optional<std::vector<int64_t>> point = RowPoint(def, row);
      if (!point.has_value() || !region.Contains(*point)) continue;
      if (seen.insert(row).second) out.push_back(row);
    }
  }
  return out;
}

size_t SemanticStore::NumViews(const std::string& table) const {
  const std::shared_ptr<TableCell> cell = cells_.Find(table);
  if (cell == nullptr) return 0;
  return cell->data.Load()->views.size();
}

size_t SemanticStore::TotalViews() const {
  size_t total = 0;
  cells_.ForEach([&](const std::string&, const TableCell& cell) {
    total += cell.data.Load()->views.size();
  });
  return total;
}

size_t SemanticStore::TotalStoredRows() const {
  size_t total = 0;
  cells_.ForEach([&](const std::string&, const TableCell& cell) {
    const std::shared_ptr<const TableData> data = cell.data.Load();
    for (const auto& view : data->views) total += view->rows.size();
  });
  return total;
}

std::vector<std::string> SemanticStore::TableNames() const {
  std::vector<std::string> names;
  cells_.ForEach([&](const std::string& name, const TableCell&) {
    names.push_back(name);
  });
  std::sort(names.begin(), names.end());
  return names;
}

void SemanticStore::DropTable(const std::string& table) {
  const std::shared_ptr<TableCell> cell = cells_.Find(table);
  if (cell == nullptr) return;
  int64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(cell->write_mutex);
    const std::shared_ptr<const TableData> old = cell->data.Load();
    dropped = static_cast<int64_t>(old->views.size());
    if (dropped == 0 && old->pooled_rows == 0) return;
    cell->data.Store(std::make_shared<const TableData>());
  }
  version_.fetch_add(1, std::memory_order_release);
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    obs::Counter* metric = evictions_metric_.load(std::memory_order_relaxed);
    if (metric != nullptr) metric->Add(dropped);
  }
}

void SemanticStore::Clear() {
  int64_t dropped = 0;
  cells_.ForEach([&](const std::string&, const TableCell& cell) {
    dropped += static_cast<int64_t>(cell.data.Load()->views.size());
  });
  cells_.Clear();
  version_.fetch_add(1, std::memory_order_release);
  if (dropped > 0) {
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
    obs::Counter* metric = evictions_metric_.load(std::memory_order_relaxed);
    if (metric != nullptr) metric->Add(dropped);
  }
}

void SemanticStore::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                                obs::Counter* evictions) {
  hits_metric_.store(hits, std::memory_order_relaxed);
  misses_metric_.store(misses, std::memory_order_relaxed);
  evictions_metric_.store(evictions, std::memory_order_relaxed);
}

std::vector<StoreTableStats> SemanticStore::SnapshotStats() const {
  std::vector<StoreTableStats> out;
  cells_.ForEach([&](const std::string& table, const TableCell& cell) {
    StoreTableStats stats;
    stats.table = table;
    stats.probes = cell.probes.load(std::memory_order_relaxed);
    stats.hits = cell.hits.load(std::memory_order_relaxed);
    stats.misses = cell.misses.load(std::memory_order_relaxed);
    const std::shared_ptr<const TableData> data = cell.data.Load();
    stats.views = data->views.size();
    stats.coverage_boxes = data->coverage.size();
    stats.pooled_rows = data->pooled_rows;
    stats.approx_bytes = data->approx_bytes;
    stats.min_epoch = data->min_epoch;
    stats.max_epoch = data->max_epoch;
    if (data->domain_volume > 0) {
      double covered = 0.0;
      for (const Box& box : data->coverage) {
        covered += static_cast<double>(box.Volume());
      }
      stats.covered_fraction =
          std::min(1.0, covered / static_cast<double>(data->domain_volume));
    }
    out.push_back(std::move(stats));
  });
  std::sort(out.begin(), out.end(),
            [](const StoreTableStats& a, const StoreTableStats& b) {
              return a.table < b.table;
            });
  return out;
}

std::string SemanticStore::StatsJson() const {
  const std::vector<StoreTableStats> tables = SnapshotStats();
  std::ostringstream os;
  os << "{\"version\":" << version() << ",\"probes\":" << TotalProbes()
     << ",\"hits\":" << TotalHits() << ",\"misses\":" << TotalMisses()
     << ",\"evictions\":" << TotalEvictions() << ",\"tables\":[";
  bool first = true;
  for (const StoreTableStats& t : tables) {
    if (!first) os << ",";
    first = false;
    os << "{\"table\":\"" << t.table << "\",\"views\":" << t.views
       << ",\"coverage_boxes\":" << t.coverage_boxes
       << ",\"pooled_rows\":" << t.pooled_rows
       << ",\"approx_bytes\":" << t.approx_bytes << ",\"covered_fraction\":";
    if (t.covered_fraction < 0) {
      os << "null";
    } else {
      os << t.covered_fraction;
    }
    os << ",\"probes\":" << t.probes << ",\"hits\":" << t.hits
       << ",\"misses\":" << t.misses << ",\"min_epoch\":" << t.min_epoch
       << ",\"max_epoch\":" << t.max_epoch << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace payless::semstore
