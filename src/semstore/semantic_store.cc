#include "semstore/semantic_store.h"

#include <algorithm>
#include <limits>

namespace payless::semstore {

std::optional<std::vector<int64_t>> RowPoint(const catalog::TableDef& def,
                                             const Row& row) {
  std::vector<int64_t> point;
  const std::vector<size_t> dims = def.ConstrainableColumns();
  point.reserve(dims.size());
  for (size_t col : dims) {
    const std::optional<int64_t> code = def.columns[col].domain.Encode(row[col]);
    if (!code.has_value()) return std::nullopt;
    point.push_back(*code);
  }
  return point;
}

namespace {

/// If `a` and `b` differ on at most one dimension and overlap or touch
/// there, returns true and writes their exact union (the hull) to `merged`.
bool TryMergeBoxes(const Box& a, const Box& b, Box* merged) {
  size_t diff_dim = a.num_dims();
  for (size_t d = 0; d < a.num_dims(); ++d) {
    if (a.dim(d) == b.dim(d)) continue;
    if (diff_dim != a.num_dims()) return false;  // differ on two dims
    diff_dim = d;
  }
  if (diff_dim == a.num_dims()) {  // identical
    *merged = a;
    return true;
  }
  const Interval& x = a.dim(diff_dim);
  const Interval& y = b.dim(diff_dim);
  // Overlapping or adjacent intervals merge into their hull exactly.
  if (x.hi + 1 < y.lo || y.hi + 1 < x.lo) return false;
  *merged = a;
  merged->dim(diff_dim) =
      Interval(std::min(x.lo, y.lo), std::max(x.hi, y.hi));
  return true;
}

}  // namespace

void SemanticStore::AddCoverage(const std::string& table, Box region) {
  std::vector<Box>& list = coverage_[table];
  for (const Box& box : list) {
    if (box.Contains(region)) return;
  }
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (size_t i = 0; i < list.size(); ++i) {
      Box merged;
      if (TryMergeBoxes(region, list[i], &merged)) {
        region = std::move(merged);
        list.erase(list.begin() + static_cast<ptrdiff_t>(i));
        merged_any = true;
        break;
      }
    }
  }
  // Merging may have grown the region past boxes it now subsumes.
  std::erase_if(list, [&](const Box& box) { return region.Contains(box); });
  list.push_back(std::move(region));
}

void SemanticStore::Store(const catalog::TableDef& def, Box region,
                          std::vector<Row> rows, int64_t epoch) {
  if (region.empty()) return;
  AddCoverage(def.name, region);

  TablePool& pool = pools_[def.name];
  const size_t num_dims = def.ConstrainableColumns().size();
  if (pool.postings.empty()) pool.postings.resize(num_dims);
  for (const Row& row : rows) {
    if (pool.seen.count(row) > 0) continue;
    std::optional<std::vector<int64_t>> point = RowPoint(def, row);
    if (!point.has_value()) continue;  // outside domains: unreachable anyway
    const uint32_t index = static_cast<uint32_t>(pool.rows.size());
    pool.seen.insert(row);
    pool.rows.push_back(row);
    for (size_t d = 0; d < num_dims; ++d) {
      pool.postings[d][(*point)[d]].push_back(index);
    }
    pool.points.push_back(std::move(*point));
  }

  views_[def.name].push_back(
      StoredView{std::move(region), std::move(rows), epoch});
}

const std::vector<StoredView>& SemanticStore::ViewsOf(
    const std::string& table) const {
  static const std::vector<StoredView> kEmpty;
  const auto it = views_.find(table);
  return it == views_.end() ? kEmpty : it->second;
}

std::vector<Box> SemanticStore::CoveredRegions(const std::string& table,
                                               int64_t min_epoch) const {
  // Weak consistency (every view usable): serve the normalized coverage.
  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    const auto it = coverage_.find(table);
    return it == coverage_.end() ? std::vector<Box>{} : it->second;
  }
  std::vector<Box> out;
  for (const StoredView& view : ViewsOf(table)) {
    if (view.epoch >= min_epoch) out.push_back(view.region);
  }
  return out;
}

bool SemanticStore::Covers(const catalog::TableDef& def, const Box& region,
                           int64_t min_epoch) const {
  if (region.empty()) return true;
  return IsCovered(region, CoveredRegions(def.name, min_epoch));
}

std::vector<Row> SemanticStore::RowsInRegion(const catalog::TableDef& def,
                                             const Box& region,
                                             int64_t min_epoch) const {
  std::vector<Row> out;
  if (region.empty()) return out;

  if (min_epoch == std::numeric_limits<int64_t>::min()) {
    // Weak consistency: serve from the deduplicated pool. Use the postings
    // of the most selective narrow dimension when one exists.
    const auto it = pools_.find(def.name);
    if (it == pools_.end()) return out;
    const TablePool& pool = it->second;

    size_t best_dim = region.num_dims();
    int64_t best_width = std::numeric_limits<int64_t>::max();
    for (size_t d = 0; d < region.num_dims(); ++d) {
      const int64_t width = region.dim(d).Width();
      if (width < best_width) {
        best_width = width;
        best_dim = d;
      }
    }
    const bool use_postings =
        best_dim < region.num_dims() && best_width <= 64 &&
        best_dim < pool.postings.size();
    if (use_postings) {
      for (int64_t code = region.dim(best_dim).lo;
           code <= region.dim(best_dim).hi; ++code) {
        const auto post_it = pool.postings[best_dim].find(code);
        if (post_it == pool.postings[best_dim].end()) continue;
        for (const uint32_t i : post_it->second) {
          if (region.Contains(pool.points[i])) out.push_back(pool.rows[i]);
        }
      }
    } else {
      for (size_t i = 0; i < pool.rows.size(); ++i) {
        if (region.Contains(pool.points[i])) out.push_back(pool.rows[i]);
      }
    }
    return out;
  }

  // Epoch-filtered (X-week consistency) path: scan usable views newest-
  // first, deduplicating identical tuples.
  std::vector<const StoredView*> usable;
  for (const StoredView& view : ViewsOf(def.name)) {
    if (view.epoch >= min_epoch && view.region.Overlaps(region)) {
      usable.push_back(&view);
    }
  }
  std::stable_sort(usable.begin(), usable.end(),
                   [](const StoredView* a, const StoredView* b) {
                     return a->epoch > b->epoch;
                   });
  std::unordered_set<Row, RowHasher> seen;
  for (const StoredView* view : usable) {
    for (const Row& row : view->rows) {
      const std::optional<std::vector<int64_t>> point = RowPoint(def, row);
      if (!point.has_value() || !region.Contains(*point)) continue;
      if (seen.insert(row).second) out.push_back(row);
    }
  }
  return out;
}

size_t SemanticStore::NumViews(const std::string& table) const {
  return ViewsOf(table).size();
}

size_t SemanticStore::TotalViews() const {
  size_t total = 0;
  for (const auto& [_, views] : views_) total += views.size();
  return total;
}

size_t SemanticStore::TotalStoredRows() const {
  size_t total = 0;
  for (const auto& [_, views] : views_) {
    for (const StoredView& view : views) total += view.rows.size();
  }
  return total;
}

void SemanticStore::Clear() {
  views_.clear();
  coverage_.clear();
  pools_.clear();
}

}  // namespace payless::semstore
