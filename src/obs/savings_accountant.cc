#include "obs/savings_accountant.h"

#include <set>
#include <sstream>

#include "semstore/semantic_store.h"

namespace payless::obs {

SavingsAccountant::SavingsAccountant(const catalog::Catalog* catalog,
                                     const stats::StatsRegistry* stats,
                                     core::OptimizerOptions options)
    : catalog_(catalog), stats_(stats), options_(options) {}

Counterfactual SavingsAccountant::Price(const sql::BoundQuery& query) const {
  // The store-less world, shared by every pricing pass: never written, so
  // concurrent reads are free and nothing of the real store leaks in.
  static semstore::SemanticStore* const empty_store =
      new semstore::SemanticStore();

  Counterfactual cf;
  const core::Optimizer optimizer(catalog_, stats_, empty_store, options_);
  const Result<core::OptimizeResult> result = optimizer.Optimize(query);
  if (!result.ok()) return cf;  // unpriceable: excluded, not guessed

  int64_t total = 0;
  for (const core::AccessSpec& access : result->plan.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    if (def == nullptr || def->dataset.empty()) continue;  // local table
    cf.by_dataset[def->dataset] += access.est_transactions;
    total += access.est_transactions;
  }
  cf.total = total;
  cf.signature = PlanSignature(result->plan, query);
  return cf;
}

std::string SavingsAccountant::PlanSignature(const core::Plan& plan,
                                             const sql::BoundQuery& query) {
  std::ostringstream os;
  for (const core::AccessSpec& access : plan.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    os << (def != nullptr ? def->name : "?") << ":"
       << core::AccessKindName(access.kind)
       << (access.used_sqr ? ":sqr" : "") << ":b" << access.bind_edges.size()
       << ";";
  }
  return os.str();
}

QuerySavings SavingsAccountant::RecordQuery(
    const Counterfactual& cf, const core::Plan& executed,
    const sql::BoundQuery& query, bool plan_cache_hit,
    const std::map<std::string, CostCell>& actual_cells,
    const std::string& tenant, SavingsLedger* ledger) {
  QuerySavings summary;
  if (!cf.ok() || ledger == nullptr) return summary;
  summary.recorded = true;

  // What the executed plan actually leaned on, per dataset.
  struct DatasetFlags {
    bool store_full = false;  // some access served entirely from the store
    bool sqr = false;         // some access priced only a remainder
  };
  std::map<std::string, DatasetFlags> flags;
  for (const core::AccessSpec& access : executed.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    if (def == nullptr || def->dataset.empty()) continue;
    DatasetFlags& f = flags[def->dataset];
    if (access.kind == core::AccessSpec::Kind::kCached) f.store_full = true;
    if (access.used_sqr) f.sqr = true;
  }
  const bool learned_switch =
      cf.signature != PlanSignature(executed, query);

  std::set<std::string> datasets;
  for (const auto& [dataset, _] : cf.by_dataset) datasets.insert(dataset);
  for (const auto& [dataset, _] : actual_cells) datasets.insert(dataset);

  for (const std::string& dataset : datasets) {
    const auto cf_it = cf.by_dataset.find(dataset);
    const int64_t counterfactual =
        cf_it == cf.by_dataset.end() ? 0 : cf_it->second;
    const auto cell_it = actual_cells.find(dataset);
    const CostCell cell =
        cell_it == actual_cells.end() ? CostCell{} : cell_it->second;

    int64_t by_cause[kNumSavingsCauses] = {0, 0, 0, 0, 0, 0};
    // Waste is its own (negative) bucket: the seller billed transactions
    // the query never used. The remaining delta goes to the dominant
    // positive cause, so the causes always sum to counterfactual - actual.
    by_cause[static_cast<int>(SavingsCause::kWaste)] =
        -cell.wasted_transactions;
    const int64_t residual =
        counterfactual - cell.transactions + cell.wasted_transactions;

    const DatasetFlags f = flags.count(dataset) > 0 ? flags.at(dataset)
                                                    : DatasetFlags{};
    // A dataset the counterfactual prices but the query billed nothing on
    // was served from the semantic store at runtime — even when the plan
    // template (optimized against a colder store) still says "fetch".
    const bool served_free = counterfactual > 0 && cell.transactions == 0 &&
                             cell.wasted_transactions == 0;
    SavingsCause cause = SavingsCause::kEstimate;
    if (f.store_full || served_free) {
      cause = SavingsCause::kStoreFullHit;
    } else if (f.sqr) {
      cause = SavingsCause::kSqrHarvest;
    } else if (learned_switch) {
      cause = SavingsCause::kLearnedSwitch;
    } else if (plan_cache_hit) {
      cause = SavingsCause::kPlanReuse;
    }
    by_cause[static_cast<int>(cause)] += residual;

    ledger->Record(tenant, dataset, counterfactual, cell.transactions,
                   by_cause);
    summary.counterfactual += counterfactual;
    summary.actual += cell.transactions;
    for (int i = 0; i < kNumSavingsCauses; ++i) {
      summary.by_cause[i] += by_cause[i];
    }
  }
  summary.savings = summary.counterfactual - summary.actual;
  return summary;
}

}  // namespace payless::obs
