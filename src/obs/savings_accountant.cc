#include "obs/savings_accountant.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "semstore/semantic_store.h"

namespace payless::obs {

namespace {

/// What `access` would have been estimated to cost under `site`'s terms —
/// the same repricing Optimizer::ChooseBuySite ran per endpoint, replayed
/// here for the counterfactual's buy-site (paid rows reconstructed from
/// the pre-routing base estimate, call count shape-determined).
int64_t RepriceAccess(const core::AccessSpec& access,
                      const catalog::DatasetDef& base,
                      const catalog::DatasetDef& site) {
  if (site.tuples_per_transaction == base.tuples_per_transaction) {
    return access.est_base_transactions;
  }
  const double paid_rows =
      static_cast<double>(access.est_base_transactions) *
      static_cast<double>(base.tuples_per_transaction);
  const int64_t t = std::max<int64_t>(site.tuples_per_transaction, 1);
  int64_t txn = std::max(
      access.est_calls,
      static_cast<int64_t>(std::ceil(paid_rows / static_cast<double>(t))));
  if (access.est_base_transactions > 0) {
    txn = std::max(txn, std::max<int64_t>(access.est_calls, 1));
  }
  return txn;
}

}  // namespace

SavingsAccountant::SavingsAccountant(const catalog::Catalog* catalog,
                                     const stats::StatsRegistry* stats,
                                     core::OptimizerOptions options)
    : catalog_(catalog), stats_(stats), options_(options) {}

Counterfactual SavingsAccountant::PriceAgainst(
    const sql::BoundQuery& query, const catalog::Catalog* catalog) const {
  // The store-less world, shared by every pricing pass: never written, so
  // concurrent reads are free and nothing of the real store leaks in.
  static semstore::SemanticStore* const empty_store =
      new semstore::SemanticStore();

  Counterfactual cf;
  // The counterfactual client is pinned to ONE market: no buy-site menu.
  core::OptimizerOptions options = options_;
  options.federation = nullptr;
  const core::Optimizer optimizer(catalog, stats_, empty_store, options);
  const Result<core::OptimizeResult> result = optimizer.Optimize(query);
  if (!result.ok()) return cf;  // unpriceable: excluded, not guessed

  int64_t total = 0;
  for (const core::AccessSpec& access : result->plan.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    if (def == nullptr || def->dataset.empty()) continue;  // local table
    cf.by_dataset[def->dataset] += access.est_transactions;
    total += access.est_transactions;
  }
  cf.total = total;
  cf.signature = PlanSignature(result->plan, query);
  return cf;
}

Counterfactual SavingsAccountant::Price(const sql::BoundQuery& query) const {
  if (federation_.empty()) return PriceAgainst(query, catalog_);

  // Federated deployment: the baseline is the cheapest single market — a
  // store-less client that registered with its best endpoint and buys
  // everything there. Ties break toward registration order (endpoint 0 is
  // the primary).
  Counterfactual best;
  for (const auto& [endpoint, catalog] : federation_) {
    Counterfactual cf = PriceAgainst(query, catalog);
    if (!cf.ok()) continue;
    cf.market = endpoint;
    if (!best.ok() || cf.total < best.total) best = std::move(cf);
  }
  return best;
}

std::string SavingsAccountant::PlanSignature(const core::Plan& plan,
                                             const sql::BoundQuery& query) {
  std::ostringstream os;
  for (const core::AccessSpec& access : plan.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    os << (def != nullptr ? def->name : "?") << ":"
       << core::AccessKindName(access.kind)
       << (access.used_sqr ? ":sqr" : "") << ":b" << access.bind_edges.size()
       << ";";
  }
  return os.str();
}

QuerySavings SavingsAccountant::RecordQuery(
    const Counterfactual& cf, const core::Plan& executed,
    const sql::BoundQuery& query, bool plan_cache_hit,
    const std::map<std::string, CostCell>& actual_cells,
    const std::string& tenant, SavingsLedger* ledger) const {
  QuerySavings summary;
  if (!cf.ok() || ledger == nullptr) return summary;
  summary.recorded = true;

  // What the executed plan actually leaned on, per dataset.
  struct DatasetFlags {
    bool store_full = false;  // some access served entirely from the store
    bool sqr = false;         // some access priced only a remainder
    bool federated = false;   // some access bought off the baseline market
    int64_t routing = 0;      // plan-time edge over the baseline's menu
  };
  const catalog::Catalog* cf_catalog = nullptr;
  for (const auto& [endpoint, catalog] : federation_) {
    if (endpoint == cf.market) cf_catalog = catalog;
  }
  std::map<std::string, DatasetFlags> flags;
  for (const core::AccessSpec& access : executed.accesses) {
    const catalog::TableDef* def = query.relations[access.rel].def;
    if (def == nullptr || def->dataset.empty()) continue;
    DatasetFlags& f = flags[def->dataset];
    if (access.kind == core::AccessSpec::Kind::kCached) f.store_full = true;
    if (access.used_sqr) f.sqr = true;
    if (!access.buy_site.empty() && access.buy_site != cf.market) {
      f.federated = true;
      // Replay the buy-site repricing for THIS access under the
      // counterfactual endpoint's menu: same access, same estimated rows,
      // the baseline's page size. The difference is exactly what routing
      // bought at plan time, independent of the counterfactual plan's
      // shape and of how estimates later compare to realized billing.
      const catalog::DatasetDef* base = catalog_->FindDataset(def->dataset);
      const catalog::DatasetDef* site =
          cf_catalog == nullptr ? nullptr
                                : cf_catalog->FindDataset(def->dataset);
      if (base != nullptr && site != nullptr) {
        f.routing +=
            RepriceAccess(access, *base, *site) - access.est_transactions;
      }
    }
  }
  const bool learned_switch =
      cf.signature != PlanSignature(executed, query);

  std::set<std::string> datasets;
  for (const auto& [dataset, _] : cf.by_dataset) datasets.insert(dataset);
  for (const auto& [dataset, _] : actual_cells) datasets.insert(dataset);

  for (const std::string& dataset : datasets) {
    const auto cf_it = cf.by_dataset.find(dataset);
    const int64_t counterfactual =
        cf_it == cf.by_dataset.end() ? 0 : cf_it->second;
    const auto cell_it = actual_cells.find(dataset);
    const CostCell cell =
        cell_it == actual_cells.end() ? CostCell{} : cell_it->second;

    int64_t by_cause[kNumSavingsCauses] = {0, 0, 0, 0, 0, 0, 0};
    // Waste is its own (negative) bucket: the seller billed transactions
    // the query never used. The remaining delta goes to the dominant
    // positive cause, so the causes always sum to counterfactual - actual.
    by_cause[static_cast<int>(SavingsCause::kWaste)] =
        -cell.wasted_transactions;
    int64_t residual =
        counterfactual - cell.transactions + cell.wasted_transactions;

    const DatasetFlags f = flags.count(dataset) > 0 ? flags.at(dataset)
                                                    : DatasetFlags{};
    // A dataset the counterfactual prices but the query billed nothing on
    // was served from the semantic store at runtime — even when the plan
    // template (optimized against a colder store) still says "fetch".
    const bool served_free = counterfactual > 0 && cell.transactions == 0 &&
                             cell.wasted_transactions == 0;
    SavingsCause cause = SavingsCause::kEstimate;
    if (f.store_full || served_free) {
      cause = SavingsCause::kStoreFullHit;
    } else if (f.federated) {
      // Routed off the counterfactual's single market. Only the PLAN-TIME
      // edge is the buy-site's doing: each routed access repriced under
      // the baseline endpoint's menu minus its actual estimate (page size
      // / price menu). The realized-vs-estimate remainder is ordinary
      // cardinality noise and falls to kEstimate below, so routing never
      // absorbs misestimates it had no hand in.
      by_cause[static_cast<int>(SavingsCause::kFederationRouting)] +=
          f.routing;
      residual -= f.routing;
    } else if (f.sqr) {
      cause = SavingsCause::kSqrHarvest;
    } else if (learned_switch) {
      cause = SavingsCause::kLearnedSwitch;
    } else if (plan_cache_hit) {
      cause = SavingsCause::kPlanReuse;
    }
    by_cause[static_cast<int>(cause)] += residual;

    ledger->Record(tenant, dataset, counterfactual, cell.transactions,
                   by_cause, &cell.by_market);
    summary.counterfactual += counterfactual;
    summary.actual += cell.transactions;
    for (int i = 0; i < kNumSavingsCauses; ++i) {
      summary.by_cause[i] += by_cause[i];
    }
  }
  summary.savings = summary.counterfactual - summary.actual;
  return summary;
}

}  // namespace payless::obs
