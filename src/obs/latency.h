// Latency observability: a log-scale high-dynamic-range histogram with
// exact-decodable buckets, the per-query stage decomposition, and
// per-endpoint latency SLOs with burn-rate extraction.
//
// LatencyHistogram follows the registry's handle discipline: registration
// (GetLatencyHistogram) takes the registry mutex once, the returned handle
// records with two relaxed atomic adds plus one relaxed bucket add — no
// lock, no allocation — so per-attempt market RTTs and per-stage query
// timings can be recorded on the hot path. Buckets are base-2
// sub-logarithmic (32 sub-buckets per octave), which makes every bucket's
// [low, high] range exactly decodable from its index and bounds the
// relative quantile error at 2^-5 ~ 3.1%.
#ifndef PAYLESS_OBS_LATENCY_H_
#define PAYLESS_OBS_LATENCY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace payless::obs {

/// Log-scale HDR histogram over non-negative microsecond values.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per power of two.
  static constexpr int kSubBits = 5;
  static constexpr int kSubCount = 1 << kSubBits;  // 32
  /// Values at or above 2^kMaxBits micros (~12.7 days) clamp to the top
  /// bucket.
  static constexpr int kMaxBits = 40;
  static constexpr int kNumBuckets = kSubCount * (kMaxBits - kSubBits + 1);

  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Lock-free: one bucket add plus count/sum adds, all relaxed.
  void Record(int64_t micros);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket holding the q-quantile observation
  /// (0 < q <= 1); 0 when empty. Error is bounded by the bucket width,
  /// i.e. a relative 2^-kSubBits.
  int64_t ValueAtQuantile(double q) const;

  int64_t bucket_count(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Exact bucket decode: values in [BucketLow(i), BucketHigh(i)] map to
  /// bucket i and nothing else does. Values below kSubCount*2 are exact
  /// (width-1 buckets).
  static int BucketIndex(int64_t micros);
  static int64_t BucketLow(int index);
  static int64_t BucketHigh(int index);

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

/// Where a query's wall-clock goes. The first kNumWallStages entries
/// partition the end-to-end wall time (their sum must land within a few
/// percent of latency_us — bench_latency gates exactly that); the trailing
/// entries are overlapping detail (per-attempt RTTs overlap under fan-out,
/// admission waits overlap with sibling fetches) and are excluded from the
/// partition sum.
enum QueryStage : int {
  kStageParsePlan = 0,    // parse + bind + optimize (minus the cache probe)
  kStagePlanCacheProbe,   // plan-template cache lookup
  kStageFetch,            // market fetch wall time (scheduler + RTT + merge
                          // of pages), per access, summed
  kStageLocalEval,        // residual predicate / projection evaluation
  kStageMerge,            // join maintenance between accesses
  // -- overlapping detail below; not part of the wall partition --
  kStageAdmissionWait,    // scheduler queue wait before a call's first try
  kStageMarketRtt,        // per-attempt market round trip, all attempts
  kStageBackoffWait,      // retry backoff sleeps
  kNumQueryStages
};

/// Stages 0..kNumWallStages-1 partition the end-to-end wall clock.
constexpr int kNumWallStages = static_cast<int>(kStageMerge) + 1;

const char* QueryStageName(int stage);

/// Per-query stage accumulator. Lives on the querying thread's stack; a
/// pointer rides in CallObs so the scheduler and connector can attribute
/// waits and RTTs to the query that caused them. Atomic because fan-out
/// executes a query's calls on many threads at once.
class QueryStageAccumulator {
 public:
  QueryStageAccumulator() {
    for (auto& m : micros_) m.store(0, std::memory_order_relaxed);
  }
  void Add(int stage, int64_t micros) {
    if (stage < 0 || stage >= kNumQueryStages || micros <= 0) return;
    micros_[stage].fetch_add(micros, std::memory_order_relaxed);
  }
  int64_t micros(int stage) const {
    return micros_[stage].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<int64_t>, kNumQueryStages> micros_;
};

/// A latency objective over a rotating window: "objective of requests
/// complete within target_micros, judged over window_micros". BurnRate is
/// the SRE burn rate: observed breach fraction divided by the error budget
/// (1 - objective); 1.0 means the budget is being consumed exactly at the
/// sustainable rate, >1 means the endpoint is burning ahead of it.
class LatencySlo {
 public:
  struct Options {
    int64_t target_micros = 50'000;
    double objective = 0.99;
    int64_t window_micros = 60'000'000;
  };

  explicit LatencySlo(const Options& options);
  LatencySlo(const LatencySlo&) = delete;
  LatencySlo& operator=(const LatencySlo&) = delete;

  /// Lock-free; rotates the window lazily via CAS on the window start.
  void Record(int64_t latency_micros);

  /// Burn rate over the active window (falls back to the previous window
  /// while the active one is empty); 0 when no data.
  double BurnRate() const;

  int64_t target_micros() const { return options_.target_micros; }
  double objective() const { return options_.objective; }
  int64_t window_micros() const { return options_.window_micros; }
  int64_t window_total() const;
  int64_t window_breaches() const;

 private:
  struct Window {
    std::atomic<int64_t> total{0};
    std::atomic<int64_t> breaches{0};
  };

  /// Rotates if the active window has expired; returns the active index.
  int ActiveIndex(int64_t now_micros);

  Options options_;
  std::atomic<int64_t> window_start_micros_;
  std::atomic<int> current_{0};
  Window windows_[2];
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_LATENCY_H_
