#include "obs/budget.h"

#include <algorithm>

namespace payless::obs {

int64_t BudgetGovernor::SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BudgetGovernor::SetBudget(const std::string& tenant,
                               const TenantBudget& budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantState& state = tenants_[tenant];
  state.budget = budget;
  state.has_budget = true;
}

void BudgetGovernor::PruneWindow(TenantState* state, int64_t now_micros) {
  const int64_t horizon = now_micros - state->budget.window_micros;
  while (!state->window.empty() && state->window.front().first <= horizon) {
    state->window_total -= state->window.front().second;
    state->window.pop_front();
  }
}

Admission BudgetGovernor::Admit(const std::string& tenant,
                                int64_t estimated_transactions,
                                int64_t now_micros, bool note_soft_warning) {
  if (now_micros < 0) now_micros = SteadyNowMicros();
  const int64_t estimate = std::max<int64_t>(estimated_transactions, 0);
  // Ledger reads take the ledger's own lock; do them before taking ours so
  // the two locks never nest in both orders.
  const int64_t spent = ledger_->TenantTransactions(tenant);

  std::lock_guard<std::mutex> lock(mutex_);
  Admission admission;
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.has_budget) return admission;
  TenantState& state = it->second;
  const TenantBudget& budget = state.budget;

  if (budget.hard_cap_transactions > 0 &&
      spent + estimate > budget.hard_cap_transactions) {
    ++state.rejections;
    admission.status = Status::BudgetExceeded(
        "tenant '" + tenant + "' over hard cap: spent " +
        std::to_string(spent) + " + estimated " + std::to_string(estimate) +
        " > cap " + std::to_string(budget.hard_cap_transactions));
    return admission;
  }
  if (budget.window_cap_transactions > 0) {
    PruneWindow(&state, now_micros);
    if (state.window_total + estimate > budget.window_cap_transactions) {
      ++state.rejections;
      admission.status = Status::BudgetExceeded(
          "tenant '" + tenant + "' over rate: " +
          std::to_string(state.window_total) + " + estimated " +
          std::to_string(estimate) + " > " +
          std::to_string(budget.window_cap_transactions) + " per " +
          std::to_string(budget.window_micros) + "us window");
      return admission;
    }
  }
  if (note_soft_warning && budget.soft_warn_transactions > 0 &&
      spent + estimate > budget.soft_warn_transactions) {
    ++state.warnings;
    admission.soft_warning = true;
  }
  return admission;
}

void BudgetGovernor::RecordSpend(const std::string& tenant,
                                 int64_t transactions, int64_t now_micros) {
  if (transactions <= 0) return;
  if (now_micros < 0) now_micros = SteadyNowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.has_budget ||
      it->second.budget.window_cap_transactions <= 0) {
    return;  // no window to maintain
  }
  PruneWindow(&it->second, now_micros);
  it->second.window.emplace_back(now_micros, transactions);
  it->second.window_total += transactions;
}

int64_t BudgetGovernor::WindowSpend(const std::string& tenant,
                                    int64_t now_micros) {
  if (now_micros < 0) now_micros = SteadyNowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  PruneWindow(&it->second, now_micros);
  return it->second.window_total;
}

int64_t BudgetGovernor::warnings(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.warnings;
}

int64_t BudgetGovernor::rejections(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rejections;
}

}  // namespace payless::obs
