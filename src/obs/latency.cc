#include "obs/latency.h"

#include <chrono>
#include <cmath>

namespace payless::obs {

namespace {

/// Position of the highest set bit (floor(log2(v))) for v >= 1.
inline int HighBit(int64_t v) {
  return 63 - __builtin_clzll(static_cast<uint64_t>(v));
}

inline int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketIndex(int64_t micros) {
  if (micros < kSubCount) return micros < 0 ? 0 : static_cast<int>(micros);
  if (micros >= (int64_t{1} << kMaxBits)) return kNumBuckets - 1;
  const int m = HighBit(micros);  // in [kSubBits, kMaxBits - 1]
  const int sub =
      static_cast<int>((micros >> (m - kSubBits)) - kSubCount);  // [0, 31]
  return kSubCount + (m - kSubBits) * kSubCount + sub;
}

int64_t LatencyHistogram::BucketLow(int index) {
  if (index < kSubCount) return index;
  const int b = index - kSubCount;
  const int scale = b / kSubCount;  // m - kSubBits
  const int sub = b % kSubCount;
  return static_cast<int64_t>(kSubCount + sub) << scale;
}

int64_t LatencyHistogram::BucketHigh(int index) {
  if (index < kSubCount) return index;
  const int scale = (index - kSubCount) / kSubCount;
  return BucketLow(index) + (int64_t{1} << scale) - 1;
}

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
}

int64_t LatencyHistogram::ValueAtQuantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based: the smallest rank covering a
  // q fraction of the data (q=0.5 over 10 obs -> rank 5, q=0.999 -> 10).
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketHigh(i);
  }
  return BucketHigh(kNumBuckets - 1);
}

const char* QueryStageName(int stage) {
  switch (stage) {
    case kStageParsePlan:
      return "parse_plan";
    case kStagePlanCacheProbe:
      return "plan_cache_probe";
    case kStageFetch:
      return "fetch";
    case kStageLocalEval:
      return "local_eval";
    case kStageMerge:
      return "merge";
    case kStageAdmissionWait:
      return "sched_admission";
    case kStageMarketRtt:
      return "market_rtt";
    case kStageBackoffWait:
      return "retry_backoff";
  }
  return "unknown";
}

LatencySlo::LatencySlo(const Options& options)
    : options_(options), window_start_micros_(SteadyNowMicros()) {}

int LatencySlo::ActiveIndex(int64_t now_micros) {
  const int64_t start = window_start_micros_.load(std::memory_order_acquire);
  if (now_micros - start >= options_.window_micros) {
    int64_t expected = start;
    if (window_start_micros_.compare_exchange_strong(
            expected, now_micros, std::memory_order_acq_rel)) {
      // This thread won the rotation: flip to the other slot and zero it.
      // Concurrent recorders may land a stray observation in either slot
      // around the flip; the SLO is an observability signal, not a ledger.
      const int next = current_.load(std::memory_order_relaxed) ^ 1;
      windows_[next].total.store(0, std::memory_order_relaxed);
      windows_[next].breaches.store(0, std::memory_order_relaxed);
      current_.store(next, std::memory_order_release);
    }
  }
  return current_.load(std::memory_order_acquire);
}

void LatencySlo::Record(int64_t latency_micros) {
  Window& w = windows_[ActiveIndex(SteadyNowMicros())];
  w.total.fetch_add(1, std::memory_order_relaxed);
  if (latency_micros > options_.target_micros) {
    w.breaches.fetch_add(1, std::memory_order_relaxed);
  }
}

int64_t LatencySlo::window_total() const {
  const int cur = current_.load(std::memory_order_acquire);
  int64_t total = windows_[cur].total.load(std::memory_order_relaxed);
  if (total == 0) {
    total = windows_[cur ^ 1].total.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t LatencySlo::window_breaches() const {
  const int cur = current_.load(std::memory_order_acquire);
  if (windows_[cur].total.load(std::memory_order_relaxed) > 0) {
    return windows_[cur].breaches.load(std::memory_order_relaxed);
  }
  return windows_[cur ^ 1].breaches.load(std::memory_order_relaxed);
}

double LatencySlo::BurnRate() const {
  const int cur = current_.load(std::memory_order_acquire);
  int64_t total = windows_[cur].total.load(std::memory_order_relaxed);
  int64_t breaches = windows_[cur].breaches.load(std::memory_order_relaxed);
  if (total == 0) {
    total = windows_[cur ^ 1].total.load(std::memory_order_relaxed);
    breaches = windows_[cur ^ 1].breaches.load(std::memory_order_relaxed);
  }
  if (total == 0) return 0.0;
  const double budget = 1.0 - options_.objective;
  if (budget <= 0.0) return 0.0;
  return (static_cast<double>(breaches) / static_cast<double>(total)) /
         budget;
}

}  // namespace payless::obs
