#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace payless::obs {

namespace {

// The armed recorder and its dump path live in process-wide statics so the
// crash path needs no object plumbing: durability's crash points call
// DumpArmedRecorder() with nothing in hand. The path is a fixed buffer —
// no allocation between arming and the crash dump.
std::atomic<FlightRecorder*> g_armed{nullptr};
constexpr size_t kMaxDumpPath = 512;
char g_armed_path[kMaxDumpPath] = {0};

}  // namespace

FlightRecorder::FlightRecorder(const Options& options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.entry_bytes < 64) options_.entry_bytes = 64;
  slots_ = std::make_unique<Slot[]>(options_.capacity);
  for (size_t i = 0; i < options_.capacity; ++i) {
    slots_[i].buf = std::make_unique<char[]>(options_.entry_bytes);
  }
}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* expected = this;
  g_armed.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel);
}

void FlightRecorder::Record(const std::string& entry_json) {
  if (entry_json.size() > options_.entry_bytes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t i = next_.fetch_add(1, std::memory_order_relaxed) %
                   options_.capacity;
  Slot& slot = slots_[i];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acq_rel)) {
    // Another writer lapped the ring into this very slot; drop rather
    // than block — the recorder is a best-effort black box.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::memcpy(slot.buf.get(), entry_json.data(), entry_json.size());
  slot.len.store(entry_json.size(), std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool FlightRecorder::ReadSlot(size_t i, std::string* out) const {
  const Slot& slot = slots_[i];
  const uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) return false;  // empty or mid-write
  const size_t len = slot.len.load(std::memory_order_relaxed);
  if (len == 0 || len > options_.entry_bytes) return false;
  out->assign(slot.buf.get(), len);
  return slot.seq.load(std::memory_order_acquire) == before;
}

std::string FlightRecorder::ToJson() const {
  // Oldest-to-newest: the ring's logical order starts right after the next
  // write position.
  const uint64_t next = next_.load(std::memory_order_relaxed);
  std::ostringstream os;
  os << "{\"entries\":[";
  bool first = true;
  std::string entry;
  for (size_t k = 0; k < options_.capacity; ++k) {
    const size_t i = (next + k) % options_.capacity;
    if (!ReadSlot(i, &entry)) continue;
    if (!first) os << ",";
    first = false;
    os << entry;
  }
  os << "],\"recorded\":" << recorded() << ",\"dropped\":" << dropped()
     << "}";
  return os.str();
}

namespace {

/// `dump.json` + seq 2 -> `dump-2.json`; no extension appends the suffix.
std::string SuffixedDumpPath(const std::string& path, uint64_t seq) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  const size_t insert_at =
      (dot != std::string::npos && (slash == std::string::npos || dot > slash))
          ? dot
          : path.size();
  return path.substr(0, insert_at) + "-" + std::to_string(seq) +
         path.substr(insert_at);
}

}  // namespace

bool FlightRecorder::DumpTo(const std::string& path) const {
  const uint64_t seq = dump_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string target = seq == 0 ? path : SuffixedDumpPath(path, seq);
  const int fd =
      ::open(target.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string json = ToJson();
  size_t off = 0;
  bool ok = true;
  while (off < json.size()) {
    const ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n <= 0) {
      ok = false;
      break;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return ok;
}

void FlightRecorder::ArmCrashDump(const std::string& path) {
  if (path.empty() || path.size() >= kMaxDumpPath) {
    FlightRecorder* expected = this;
    g_armed.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
    return;
  }
  std::memcpy(g_armed_path, path.c_str(), path.size() + 1);
  g_armed.store(this, std::memory_order_release);
}

void FlightRecorder::DumpArmedRecorder() {
  FlightRecorder* recorder = g_armed.load(std::memory_order_acquire);
  if (recorder == nullptr || g_armed_path[0] == '\0') return;
  (void)recorder->DumpTo(g_armed_path);
}

}  // namespace payless::obs
