// Estimator-accuracy tracking: the optimizer-side telemetry of Fig. 3's
// feedback loop. Every market call already reports its true result size
// back to the statistics block; this tracker taps the same point and
// records the (estimated, actual) pair as a q-error — the standard
// multiplicative estimation-error metric,
//
//   qerror(e, a) = max(max(e,1)/max(a,1), max(a,1)/max(e,1))  >= 1,
//
// into per-dataset histograms and stats-quality gauges of a metrics
// registry. A q-error of 1 is a perfect estimate; the paper's cold-start
// uniform assumption can be off by orders of magnitude until feedback
// refines the histogram (§4.3).
//
// The tracker also owns the plan-template cache's staleness signal: when a
// recorded q-error exceeds the configured invalidation threshold, the
// estimate that priced some plan was materially wrong, so every cached
// template keyed on the previous epoch must be re-optimized against the
// now-refined statistics. The epoch is a single monotonic counter — cheap
// to read on the query hot path, and conservative (one bad estimate
// anywhere re-prices everything, which is the behaviour the paper's
// uniform-to-learned plan switch needs).
#ifndef PAYLESS_OBS_ACCURACY_H_
#define PAYLESS_OBS_ACCURACY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace payless::obs {

/// Per-table accuracy aggregate (all values over the tracker's lifetime).
struct AccuracySnapshot {
  uint64_t samples = 0;
  double last_qerror = 0.0;
  double max_qerror = 0.0;
  double sum_qerror = 0.0;  // mean = sum / samples

  double mean_qerror() const {
    return samples == 0 ? 0.0 : sum_qerror / static_cast<double>(samples);
  }
};

/// Thread-safe (estimated, actual) recorder with metric export and a drift
/// epoch for plan-template-cache invalidation.
class AccuracyTracker {
 public:
  /// `metrics` may be null (tracking still works; nothing is exported).
  /// A non-positive `qerror_invalidation_threshold` disables drift ticking
  /// entirely — cached plans then live until their key's other components
  /// change.
  AccuracyTracker(MetricsRegistry* metrics,
                  double qerror_invalidation_threshold);

  AccuracyTracker(const AccuracyTracker&) = delete;
  AccuracyTracker& operator=(const AccuracyTracker&) = delete;

  /// The q-error of estimating `estimated` rows when `actual` arrived.
  /// Symmetric, >= 1; both sides are clamped to 1 so empty results do not
  /// divide by zero.
  static double QError(double estimated, double actual);

  /// Records one pair for `table` (hosted by `dataset`; the dataset tag is
  /// only used to label metrics). Updates the per-table q-error histogram
  /// and gauges, and ticks the drift epoch when the threshold is exceeded.
  void Record(const std::string& table, const std::string& dataset,
              double estimated, double actual);

  /// Resolves `table`'s metric handles now, off the query path. Callers
  /// that know their table set up front (PayLess registers every catalog
  /// table at construction) use this so steady-state Record calls never
  /// touch the metrics registry's name map.
  void PrepareTable(const std::string& table);

  /// Publishes stats-maturity gauges for `table` (histogram bucket count,
  /// feedback volume, believed cardinality). Called alongside Record from
  /// the feedback point; split out because the tracker must not depend on
  /// the stats layer.
  void RecordStatsQuality(const std::string& table, int64_t buckets,
                          int64_t feedbacks, double total_rows);

  /// Monotonic staleness epoch: ticks whenever a recorded q-error exceeds
  /// the invalidation threshold. Plan-cache keys embed this value.
  uint64_t drift_epoch() const {
    return drift_epoch_.load(std::memory_order_acquire);
  }

  /// Recovery: fast-forwards the drift epoch to at least `epoch` (the
  /// value the durability snapshot persisted), so plan-cache keys minted
  /// after a warm restart line up with the recovered templates' epochs.
  /// Never moves the epoch backwards.
  void RestoreDriftEpoch(uint64_t epoch);

  double threshold() const { return threshold_; }

  AccuracySnapshot Snapshot(const std::string& table) const;
  uint64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

  /// Metric-name-safe version of a table/dataset name ([a-zA-Z0-9_:] kept,
  /// everything else becomes '_').
  static std::string SanitizeMetricName(const std::string& name);

 private:
  struct PerTable {
    AccuracySnapshot snapshot;
    Histogram* qerror_hist = nullptr;      // x100 fixed-point
    Gauge* qerror_last = nullptr;          // x100 fixed-point
    Gauge* qerror_max = nullptr;           // x100 fixed-point
    Gauge* stats_buckets = nullptr;
    Gauge* stats_feedbacks = nullptr;
    Gauge* stats_rows = nullptr;
  };

  PerTable& Entry(const std::string& table, const std::string& dataset);

  MetricsRegistry* metrics_;
  const double threshold_;
  std::atomic<uint64_t> drift_epoch_{0};
  std::atomic<uint64_t> total_samples_{0};
  Counter* drift_ticks_ = nullptr;
  Gauge* drift_epoch_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::map<std::string, PerTable> tables_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_ACCURACY_H_
