// Counterfactual pricing and savings attribution — the "what would this
// query have cost WITHOUT PayLess" half of the savings ledger.
//
// At plan time, Price() runs the regular optimizer against a function-
// local EMPTY semantic store: no coverage means no zero-price relations
// and no SQR remainders, so the result is the cheapest legal plan a
// store-less client would have executed — the paper's baseline in every
// savings figure (EDBT 2015 Fig. 10-15). The what-if pass touches no
// market connector, bills nothing, and mutates neither the real store nor
// the statistics: it reads the same StatsRegistry the live optimizer
// reads, which is what makes the counterfactual comparable (same beliefs,
// different coverage) and deterministic for a pinned stats snapshot.
//
// At execution time, RecordQuery() reconciles the counterfactual estimate
// against the CostLedger's realized per-dataset cells and attributes the
// delta to one dominant cause per dataset (store full hit > SQR harvest >
// learned-stats switch > plan reuse > estimate correction), with billed-
// but-lost responses carved out as negative waste — so per cell:
//     counterfactual == actual + savings,  sum(causes) == savings.
//
// Lives in payless_obs_explain (not base obs): pricing needs the
// optimizer, which sits above the base obs library in the layering.
#ifndef PAYLESS_OBS_SAVINGS_ACCOUNTANT_H_
#define PAYLESS_OBS_SAVINGS_ACCOUNTANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "core/plan.h"
#include "obs/cost_ledger.h"
#include "obs/metrics.h"
#include "obs/savings.h"
#include "sql/bound_query.h"
#include "stats/estimator.h"

namespace payless::obs {

/// One query's counterfactual price, computed at plan time.
struct Counterfactual {
  /// Estimated transactions of the store-less plan; -1 = pricing failed
  /// (the query is then excluded from savings accounting, never guessed).
  int64_t total = -1;
  std::map<std::string, int64_t> by_dataset;
  /// Shape signature of the counterfactual plan (see PlanSignature).
  std::string signature;
  /// Federation: the single market endpoint the counterfactual buys
  /// everything from — the cheapest one ("" when not federated). Executed
  /// accesses routed to a different endpoint earn federation_routing
  /// savings against this baseline.
  std::string market;

  bool ok() const { return total >= 0; }
};

/// One query's realized savings, aggregated over its datasets — what
/// RecordQuery folded into the ledger, returned so the caller can update
/// metrics and the QueryReport without re-deriving the attribution.
struct QuerySavings {
  bool recorded = false;
  int64_t counterfactual = 0;
  int64_t actual = 0;
  int64_t savings = 0;  // counterfactual - actual (waste included)
  int64_t by_cause[kNumSavingsCauses] = {0, 0, 0, 0, 0, 0, 0};
};

class SavingsAccountant {
 public:
  /// `catalog` and `stats` must outlive the accountant; `options` should
  /// mirror the live optimizer's options so the counterfactual differs
  /// from reality only in store coverage.
  SavingsAccountant(const catalog::Catalog* catalog,
                    const stats::StatsRegistry* stats,
                    core::OptimizerOptions options);

  /// Federation: registers the per-endpoint catalogs (each a copy of the
  /// base catalog under that endpoint's menu). Price() then returns the
  /// cheapest SINGLE-market plan — the baseline a non-federated client
  /// pinned to its best endpoint would pay. Setup-time; the catalogs must
  /// outlive the accountant.
  void SetFederation(
      std::vector<std::pair<std::string, const catalog::Catalog*>> endpoints) {
    federation_ = std::move(endpoints);
  }

  /// Prices the counterfactual plan for `query`. Read-only and
  /// thread-safe: same query + same stats snapshot => identical result.
  Counterfactual Price(const sql::BoundQuery& query) const;

  /// Order-insensitive shape signature of a plan: per-relation access
  /// kind, SQR usage and bind shape. Two plans with equal signatures made
  /// the same access decisions (they may differ in estimates).
  static std::string PlanSignature(const core::Plan& plan,
                                   const sql::BoundQuery& query);

  /// Folds one executed query into `ledger`: per dataset, savings =
  /// counterfactual - actual, attributed to a dominant cause read off the
  /// executed plan (plus negative waste for lost-response billing).
  /// `actual_cells` is CostLedger::QueryCells for the query. Returns the
  /// query-level aggregate of what was recorded. A member (not static):
  /// the federation_routing split replays each routed access's buy-site
  /// repricing under the counterfactual endpoint's menu.
  QuerySavings RecordQuery(
      const Counterfactual& cf, const core::Plan& executed,
      const sql::BoundQuery& query, bool plan_cache_hit,
      const std::map<std::string, CostCell>& actual_cells,
      const std::string& tenant, SavingsLedger* ledger) const;

 private:
  Counterfactual PriceAgainst(const sql::BoundQuery& query,
                              const catalog::Catalog* catalog) const;

  const catalog::Catalog* catalog_;
  const stats::StatsRegistry* stats_;
  core::OptimizerOptions options_;
  std::vector<std::pair<std::string, const catalog::Catalog*>> federation_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_SAVINGS_ACCOUNTANT_H_
