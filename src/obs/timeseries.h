// Metric history: fixed-capacity ring buffers over the registry's scalar
// snapshot, filled by a background sampling thread.
//
// Counters and gauges are instantaneous values; operators (and the
// /dashboard sparklines) need trends. The sampler wakes every
// `period_micros`, takes one MetricsRegistry::SnapshotScalars() — a single
// registry-mutex hold of relaxed atomic reads — and appends each value to
// that series' ring. Capacity is fixed at construction, so memory is
// bounded: series_count * capacity * 8 bytes, no allocation after the
// first sample observed each name.
//
// SampleOnce() is public so tests (and smoke runs) can drive sampling
// deterministically without the thread.
#ifndef PAYLESS_OBS_TIMESERIES_H_
#define PAYLESS_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace payless::obs {

/// Background sampler turning the metrics registry into bounded history.
class TimeSeriesSampler {
 public:
  struct Options {
    /// Sampling period for the background thread.
    int64_t period_micros = 1'000'000;
    /// Ring capacity per series; the oldest sample is overwritten.
    size_t capacity = 512;
  };

  TimeSeriesSampler(MetricsRegistry* registry, Options options);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Idempotent. The thread samples once immediately, then every period.
  void Start();
  void Stop();
  bool running() const;

  /// Take one snapshot now (also what the background thread calls).
  void SampleOnce();

  /// Samples of one series, oldest first; empty if the name is unknown.
  std::vector<int64_t> Series(const std::string& name) const;

  /// All known series names (sorted — map order).
  std::vector<std::string> Names() const;

  size_t capacity() const { return options_.capacity; }

  /// {"name":"...","period_micros":N,"samples":[...]} — oldest first.
  /// Unknown names yield an empty samples array (the route layer decides
  /// whether that is a 404).
  std::string SeriesJson(const std::string& name) const;

  /// {"period_micros":N,"capacity":N,"series":["name",...]}
  std::string IndexJson() const;

 private:
  struct Ring {
    std::vector<int64_t> data;  // capacity-bounded
    size_t next = 0;            // write cursor
    size_t size = 0;            // == data.size() once full
  };

  void Loop();

  MetricsRegistry* const registry_;
  const Options options_;

  mutable std::mutex mutex_;  // guards series_ and wakes the loop
  std::condition_variable cv_;
  std::map<std::string, Ring> series_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_TIMESERIES_H_
