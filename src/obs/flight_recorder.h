// Always-on lock-free flight recorder: a fixed-capacity ring of the last N
// completed query traces and scheduler events, pre-serialized to JSON at
// record time so a crash-path dump is a plain walk-and-write with no
// allocation-dependent rendering.
//
// Writers claim a slot with one fetch_add and publish through a per-slot
// seqlock (odd = being written, even = stable); a writer that finds its
// slot mid-write (the ring lapped itself) drops the entry rather than
// block. Readers copy out slots whose sequence is stable across the copy
// and skip torn ones, so ToJson()/DumpTo() are safe against concurrent
// recording without any lock.
//
// Crash path: ArmCrashDump registers this recorder process-wide;
// DumpArmedRecorder() — called at the durability crash points right before
// std::_Exit — walks the ring with the same seqlock reads and write()s the
// dump, leaving the last moments of every in-flight query on disk.
#ifndef PAYLESS_OBS_FLIGHT_RECORDER_H_
#define PAYLESS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace payless::obs {

class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 32;      // slots in the ring
    size_t entry_bytes = 4096;  // max pre-serialized entry size, larger
                                // entries are truncated to a stub
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(const Options& options);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one pre-rendered JSON object (no trailing comma/newline).
  /// Lock-free; drops the entry if the claimed slot is mid-write or the
  /// JSON exceeds entry_bytes.
  void Record(const std::string& entry_json);

  /// {"entries":[...oldest to newest...],"recorded":n,"dropped":d}
  std::string ToJson() const;

  /// Writes ToJson() to a uniquely-named variant of `path`: the first dump
  /// of this recorder uses `path` verbatim, every later one inserts a
  /// monotonic `-<n>` before the extension (`dump.json`, `dump-1.json`,
  /// `dump-2.json`, ...) so repeated dumps in one process — several failed
  /// queries, a budget rejection and then a crash — never overwrite each
  /// other. Returns false on I/O error.
  bool DumpTo(const std::string& path) const;

  /// Registers this recorder (and the dump path) for the crash-point dump.
  /// Last call wins; pass an empty path to disarm.
  void ArmCrashDump(const std::string& path);

  /// Dumps the armed recorder, if any, to its armed path. Lock-free reads
  /// plus open/write/close only — safe to call on the crash path right
  /// before _Exit. No-op when nothing is armed.
  static void DumpArmedRecorder();

  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // even = stable, odd = being written
    std::atomic<size_t> len{0};
    std::unique_ptr<char[]> buf;
  };

  /// Copies slot `i` into `out` if stable; returns false on a torn read.
  bool ReadSlot(size_t i, std::string* out) const;

  Options options_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
  mutable std::atomic<uint64_t> dump_seq_{0};
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_FLIGHT_RECORDER_H_
