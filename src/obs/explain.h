// EXPLAIN / EXPLAIN ANALYZE rendering — the single plan-formatting path.
//
// The optimizer's left-deep plan (core::Plan) already carries every
// estimate the cost model used: per-access kind, bind edges, SQR usage,
// est_rows / est_bind_values / est_transactions / est_calls. EXPLAIN
// renders exactly that; EXPLAIN ANALYZE executes the query first and joins
// the measured actuals — rows, calls, transactions, retries, waste — back
// onto each access from the query's trace spans, then reports the
// per-access transaction q-error so an operator can see precisely where
// (and by how much) the statistics mispriced the plan.
//
// This lives in its own obs sub-target (payless_obs_explain) because it
// depends on core/sql/stats, which sit ABOVE the base obs library in the
// layering; the base library (metrics, traces, ledger, accuracy) stays
// dependency-free so market can link it.
#ifndef PAYLESS_OBS_EXPLAIN_H_
#define PAYLESS_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "sql/bound_query.h"
#include "stats/estimator.h"

namespace payless::obs {

/// Measured execution facts for one plan access, joined from trace spans.
struct AccessActuals {
  bool present = false;          // the access ran (its span was found)
  int64_t rows = 0;              // rows the access handed to the join
  int64_t calls = 0;             // delivered market calls
  int64_t transactions = 0;      // transactions billed to delivered calls
  int64_t rows_from_market = 0;  // summed true result sizes (num_records)
  int64_t retries = 0;           // summed over the market.get child spans
  int64_t wasted_transactions = 0;  // billed to attempts that then failed
};

/// Joins `spans` back onto plan access positions via the access spans'
/// `access_index` attribute; retries and waste are summed from each access
/// span's market-call children. Always returns `num_accesses` entries
/// (absent ones — zero-price accesses the engine skipped, or accesses
/// never reached after a mid-flight error — have present == false).
std::vector<AccessActuals> JoinAccessActuals(
    const std::vector<SpanRecord>& spans, size_t num_accesses);

/// Renders the bare plan (header + one line per access with its estimates).
std::string RenderPlan(const core::Plan& plan, const sql::BoundQuery& query);

/// Optional context for the full EXPLAIN rendering; every field may be
/// left unset and its section is omitted.
struct ExplainContext {
  const core::PlanningCounters* counters = nullptr;
  /// Adds per-market-table statistics-maturity lines (buckets, feedbacks,
  /// believed cardinality).
  const stats::StatsRegistry* stats = nullptr;
  /// ANALYZE: per-access actuals, one entry per plan access (from
  /// JoinAccessActuals). Enables the "actual:" lines and q-errors.
  const std::vector<AccessActuals>* actuals = nullptr;
  /// ANALYZE: the query's total billed transactions (< 0 omits the line).
  int64_t transactions_spent = -1;
  /// ANALYZE + savings accounting: estimated cost of the counterfactual
  /// (store-less, uncached) plan and the realized savings delta. Both
  /// rendered only when counterfactual_transactions >= 0.
  int64_t counterfactual_transactions = -1;
  int64_t savings_transactions = 0;
  /// ANALYZE: end-to-end wall latency in microseconds (< 0 omits the
  /// footer) and — when set — its stage decomposition: an array of
  /// kNumQueryStages entries indexed by QueryStage. The footer folds the
  /// wall stages into plan (parse/plan + cache probe), market (fetch) and
  /// eval (local eval + merge).
  int64_t latency_us = -1;
  const int64_t* stage_micros = nullptr;
};

/// Full EXPLAIN [ANALYZE] text: RenderPlan plus planning counters, stats
/// maturity and — when `context.actuals` is set — per-access actuals with
/// the estimated-vs-actual transaction q-error.
std::string RenderExplain(const core::Plan& plan, const sql::BoundQuery& query,
                          const ExplainContext& context);

}  // namespace payless::obs

#endif  // PAYLESS_OBS_EXPLAIN_H_
