#include "obs/accuracy.h"

#include <algorithm>
#include <cctype>

namespace payless::obs {

namespace {

/// q-error histogram bounds, x100 fixed-point: 1.0, 1.25, 1.5, 2, 4, 8,
/// 16, 64 (+inf implicit). The low end resolves "basically right", the
/// high end catches cold-start misestimates that are off by orders of
/// magnitude.
std::vector<int64_t> QErrorBounds() {
  return {100, 125, 150, 200, 400, 800, 1600, 6400};
}

int64_t ToX100(double v) {
  const double scaled = v * 100.0;
  constexpr double kMax = 9.0e18;
  return static_cast<int64_t>(std::min(scaled, kMax));
}

}  // namespace

AccuracyTracker::AccuracyTracker(MetricsRegistry* metrics,
                                 double qerror_invalidation_threshold)
    : metrics_(metrics), threshold_(qerror_invalidation_threshold) {
  if (metrics_ != nullptr) {
    drift_ticks_ = metrics_->GetCounter("payless_stats_drift_ticks_total");
    drift_epoch_gauge_ = metrics_->GetGauge("payless_stats_drift_epoch");
  }
}

double AccuracyTracker::QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

std::string AccuracyTracker::SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    if (!ok) c = '_';
  }
  return out;
}

AccuracyTracker::PerTable& AccuracyTracker::Entry(const std::string& table,
                                                  const std::string& dataset) {
  PerTable& entry = tables_[table];
  if (metrics_ != nullptr && entry.qerror_hist == nullptr) {
    const std::string tag = SanitizeMetricName(table);
    (void)dataset;  // tables map 1:1 to metric series; dataset rides along
                    // in the ledger, which already keys spend by dataset
    entry.qerror_hist =
        metrics_->GetHistogram("payless_qerror_x100_" + tag, QErrorBounds());
    entry.qerror_last = metrics_->GetGauge("payless_qerror_last_x100_" + tag);
    entry.qerror_max = metrics_->GetGauge("payless_qerror_max_x100_" + tag);
    entry.stats_buckets = metrics_->GetGauge("payless_stats_buckets_" + tag);
    entry.stats_feedbacks =
        metrics_->GetGauge("payless_stats_feedbacks_" + tag);
    entry.stats_rows = metrics_->GetGauge("payless_stats_rows_" + tag);
  }
  return entry;
}

void AccuracyTracker::PrepareTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry(table, /*dataset=*/"");
}

void AccuracyTracker::Record(const std::string& table,
                             const std::string& dataset, double estimated,
                             double actual) {
  const double qerror = QError(estimated, actual);
  total_samples_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    PerTable& entry = Entry(table, dataset);
    AccuracySnapshot& snap = entry.snapshot;
    ++snap.samples;
    snap.last_qerror = qerror;
    snap.max_qerror = std::max(snap.max_qerror, qerror);
    snap.sum_qerror += qerror;
    if (entry.qerror_hist != nullptr) {
      entry.qerror_hist->Observe(ToX100(qerror));
      entry.qerror_last->Set(ToX100(qerror));
      entry.qerror_max->Set(ToX100(snap.max_qerror));
    }
  }

  if (threshold_ > 0.0 && qerror > threshold_) {
    const uint64_t epoch =
        drift_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (drift_ticks_ != nullptr) drift_ticks_->Add(1);
    if (drift_epoch_gauge_ != nullptr) {
      drift_epoch_gauge_->Set(static_cast<int64_t>(epoch));
    }
  }
}

void AccuracyTracker::RestoreDriftEpoch(uint64_t epoch) {
  uint64_t current = drift_epoch_.load(std::memory_order_acquire);
  while (current < epoch && !drift_epoch_.compare_exchange_weak(
                                current, epoch, std::memory_order_acq_rel)) {
  }
  if (drift_epoch_gauge_ != nullptr) {
    drift_epoch_gauge_->Set(
        static_cast<int64_t>(drift_epoch_.load(std::memory_order_acquire)));
  }
}

void AccuracyTracker::RecordStatsQuality(const std::string& table,
                                         int64_t buckets, int64_t feedbacks,
                                         double total_rows) {
  if (metrics_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  PerTable& entry = Entry(table, /*dataset=*/"");
  entry.stats_buckets->Set(buckets);
  entry.stats_feedbacks->Set(feedbacks);
  entry.stats_rows->Set(static_cast<int64_t>(total_rows));
}

AccuracySnapshot AccuracyTracker::Snapshot(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return AccuracySnapshot{};
  return it->second.snapshot;
}

}  // namespace payless::obs
