#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace payless::obs {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(int64_t value) {
  size_t bucket = bounds_.size();  // +inf bucket by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

int64_t Histogram::ValueAtQuantile(double q) const {
  const int64_t total = count();
  if (total <= 0 || bounds_.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bounds_[i];
  }
  // The +inf bucket has no finite upper bound; report the last one.
  return bounds_.back();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(
    const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<LatencyHistogram>& slot = latency_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, int64_t>>
MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size() + 6 * histograms_.size() +
              6 * latency_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + "_count", h->count());
    out.emplace_back(name + "_sum", h->sum());
    out.emplace_back(name + "_p50", h->ValueAtQuantile(0.50));
    out.emplace_back(name + "_p95", h->ValueAtQuantile(0.95));
    out.emplace_back(name + "_p99", h->ValueAtQuantile(0.99));
    out.emplace_back(name + "_p999", h->ValueAtQuantile(0.999));
  }
  for (const auto& [name, h] : latency_) {
    out.emplace_back(name + "_count", h->count());
    out.emplace_back(name + "_sum", h->sum());
    out.emplace_back(name + "_p50", h->ValueAtQuantile(0.50));
    out.emplace_back(name + "_p95", h->ValueAtQuantile(0.95));
    out.emplace_back(name + "_p99", h->ValueAtQuantile(0.99));
    out.emplace_back(name + "_p999", h->ValueAtQuantile(0.999));
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    const std::vector<int64_t> counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "},\"latency\":{";
  first = true;
  for (const auto& [name, h] : latency_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"p50\":" << h->ValueAtQuantile(0.50)
       << ",\"p95\":" << h->ValueAtQuantile(0.95)
       << ",\"p99\":" << h->ValueAtQuantile(0.99)
       << ",\"p999\":" << h->ValueAtQuantile(0.999) << "}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::LatencyJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : latency_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"p50\":" << h->ValueAtQuantile(0.50)
       << ",\"p95\":" << h->ValueAtQuantile(0.95)
       << ",\"p99\":" << h->ValueAtQuantile(0.99)
       << ",\"p999\":" << h->ValueAtQuantile(0.999) << "}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "# TYPE " << name << " histogram\n";
    const std::vector<int64_t> counts = h->BucketCounts();
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << h->sum() << "\n";
    os << name << "_count " << h->count() << "\n";
  }
  // Latency histograms render as Prometheus summaries: the HDR bucket list
  // is too long for useful text exposition, the quantiles are the point.
  for (const auto& [name, h] : latency_) {
    os << "# TYPE " << name << " summary\n";
    os << name << "{quantile=\"0.5\"} " << h->ValueAtQuantile(0.50) << "\n";
    os << name << "{quantile=\"0.95\"} " << h->ValueAtQuantile(0.95) << "\n";
    os << name << "{quantile=\"0.99\"} " << h->ValueAtQuantile(0.99) << "\n";
    os << name << "{quantile=\"0.999\"} " << h->ValueAtQuantile(0.999)
       << "\n";
    os << name << "_sum " << h->sum() << "\n";
    os << name << "_count " << h->count() << "\n";
  }
  return os.str();
}

}  // namespace payless::obs
