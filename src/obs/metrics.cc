#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace payless::obs {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(int64_t value) {
  size_t bucket = bounds_.size();  // +inf bucket by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::vector<std::pair<std::string, int64_t>>
MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size() + 2 * histograms_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + "_count", h->count());
    out.emplace_back(name + "_sum", h->sum());
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    const std::vector<int64_t> counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "# TYPE " << name << " histogram\n";
    const std::vector<int64_t> counts = h->BucketCounts();
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << h->sum() << "\n";
    os << name << "_count " << h->count() << "\n";
  }
  return os.str();
}

}  // namespace payless::obs
