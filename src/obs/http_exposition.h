// Minimal embedded HTTP exposition server: live introspection for a
// running PayLess instance.
//
// One background thread runs a blocking accept loop over a plain POSIX
// socket — no external dependencies, no event loop — and answers a small
// table of read-only GET/HEAD routes:
//
//   /metrics          Prometheus text exposition of the metrics registry
//   /metrics.json     the same registry as JSON
//   /ledger           the cost ledger (per-tenant / per-dataset spend)
//   /savings          the savings ledger (counterfactual vs actual, causes)
//   /store            semantic-store coverage summaries (injected provider)
//   /timeseries       sampled metric history: ?name=<metric> for one
//                     series, no query for the index of known names
//   /dashboard        self-contained live HTML dashboard over the above
//   /explain?q=...    EXPLAIN for a URL-encoded SQL statement (the handler
//                     is injected by the embedding layer, keeping this
//                     library below exec in the dependency order)
//
// Embedders may add further routes with AddRoute() before Start().
//
// Scale intent: an operator's curl / a Prometheus scraper — one small
// response per request, connection closed after each (HTTP/1.1 with
// `Connection: close`). Correctness under concurrent queries comes from
// the underlying structures (metrics handles are atomics, the ledgers and
// registry lock internally), so serving never blocks the query path.
// Hygiene: HEAD answers headers-only with the GET Content-Length, request
// lines above 4 KiB get 414, and reads are capped at 8 KiB total.
#ifndef PAYLESS_OBS_HTTP_EXPOSITION_H_
#define PAYLESS_OBS_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/cost_ledger.h"
#include "obs/metrics.h"
#include "obs/savings.h"
#include "obs/timeseries.h"

namespace payless::obs {

/// One route's answer: status code plus typed body. The server supplies
/// the reason phrase, Content-Length and connection framing.
struct HttpReply {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpReply Json(std::string body);
  static HttpReply Html(std::string body);
  static HttpReply Text(int status, std::string body);
};

class HttpExpositionServer {
 public:
  struct Options {
    /// Loopback by default: this is an admin surface, not a public API.
    std::string bind_address = "127.0.0.1";
    /// 0 asks the kernel for an ephemeral port; read it back via port().
    uint16_t port = 0;
  };

  /// Serves /explain?q=<sql>. Receives the decoded SQL text; returns the
  /// rendered plan or an error (mapped to HTTP 400). Must be thread-safe.
  using ExplainHandler = std::function<Result<std::string>(const std::string&)>;

  /// A route body builder: receives the raw (undecoded) query string.
  /// Must be thread-safe — the accept thread invokes it concurrently with
  /// whatever the embedding application is doing.
  using RouteHandler = std::function<HttpReply(const std::string& query)>;

  /// Either registry pointer may be null; the endpoint then answers 404.
  HttpExpositionServer(MetricsRegistry* metrics, CostLedger* ledger,
                       Options options);
  HttpExpositionServer(MetricsRegistry* metrics, CostLedger* ledger)
      : HttpExpositionServer(metrics, ledger, Options()) {}
  ~HttpExpositionServer();

  HttpExpositionServer(const HttpExpositionServer&) = delete;
  HttpExpositionServer& operator=(const HttpExpositionServer&) = delete;

  /// Install or replace a route. Path must start with '/' and contain no
  /// query string. Not thread-safe against in-flight requests: wire routes
  /// before Start().
  void AddRoute(const std::string& path, RouteHandler handler);

  /// Install before Start(); unset leaves /explain answering 404.
  void SetExplainHandler(ExplainHandler handler);

  /// Wires /savings. Unset answers 404.
  void SetSavingsLedger(SavingsLedger* savings);

  /// Wires /store. The provider returns the semantic store's StatsJson();
  /// injected as a closure so this library stays below semstore in the
  /// dependency order. Must be thread-safe.
  void SetStoreStatsProvider(std::function<std::string()> provider);

  /// Wires /timeseries. The sampler must outlive the server.
  void SetTimeSeriesSampler(TimeSeriesSampler* sampler);

  /// Binds, listens and launches the accept thread. Fails (without leaking
  /// the socket) when the address cannot be bound.
  Status Start();

  /// Stops accepting, closes the socket and joins the thread. Idempotent;
  /// also called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel's pick when Options::port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

 private:
  void InstallBuiltinRoutes();
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Builds the response for one request path (incl. query string).
  std::string Respond(const std::string& target) const;

  MetricsRegistry* metrics_;
  CostLedger* ledger_;
  Options options_;
  ExplainHandler explain_handler_;
  std::map<std::string, RouteHandler> routes_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Decodes %xx escapes and '+' (query-string convention). Bad escapes are
/// passed through verbatim.
std::string UrlDecode(const std::string& s);

/// Value of `key` in a raw query string ("a=1&b=2"), URL-decoded; empty
/// string when absent. The last occurrence wins.
std::string QueryParam(const std::string& query, const std::string& key);

}  // namespace payless::obs

#endif  // PAYLESS_OBS_HTTP_EXPOSITION_H_
