// Minimal embedded HTTP exposition server: live introspection for a
// running PayLess instance.
//
// One background thread runs a blocking accept loop over a plain POSIX
// socket — no external dependencies, no event loop — and answers four
// read-only GET endpoints:
//
//   /metrics        Prometheus text exposition of the metrics registry
//   /metrics.json   the same registry as JSON
//   /ledger         the cost ledger (per-tenant / per-dataset spend)
//   /explain?q=...  EXPLAIN for a URL-encoded SQL statement (the handler
//                   is injected by the embedding layer, keeping this
//                   library below exec in the dependency order)
//
// Scale intent: an operator's curl / a Prometheus scraper — one small
// response per request, connection closed after each (HTTP/1.1 with
// `Connection: close`). Correctness under concurrent queries comes from
// the underlying structures (metrics handles are atomics, the ledger and
// registry lock internally), so serving never blocks the query path.
#ifndef PAYLESS_OBS_HTTP_EXPOSITION_H_
#define PAYLESS_OBS_HTTP_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/cost_ledger.h"
#include "obs/metrics.h"

namespace payless::obs {

class HttpExpositionServer {
 public:
  struct Options {
    /// Loopback by default: this is an admin surface, not a public API.
    std::string bind_address = "127.0.0.1";
    /// 0 asks the kernel for an ephemeral port; read it back via port().
    uint16_t port = 0;
  };

  /// Serves /explain?q=<sql>. Receives the decoded SQL text; returns the
  /// rendered plan or an error (mapped to HTTP 400). Must be thread-safe.
  using ExplainHandler = std::function<Result<std::string>(const std::string&)>;

  /// Either registry pointer may be null; the endpoint then answers 404.
  HttpExpositionServer(MetricsRegistry* metrics, CostLedger* ledger,
                       Options options);
  HttpExpositionServer(MetricsRegistry* metrics, CostLedger* ledger)
      : HttpExpositionServer(metrics, ledger, Options()) {}
  ~HttpExpositionServer();

  HttpExpositionServer(const HttpExpositionServer&) = delete;
  HttpExpositionServer& operator=(const HttpExpositionServer&) = delete;

  /// Install before Start(); unset leaves /explain answering 404.
  void SetExplainHandler(ExplainHandler handler);

  /// Binds, listens and launches the accept thread. Fails (without leaking
  /// the socket) when the address cannot be bound.
  Status Start();

  /// Stops accepting, closes the socket and joins the thread. Idempotent;
  /// also called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel's pick when Options::port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Builds the response for one request path (incl. query string).
  std::string Respond(const std::string& target) const;

  MetricsRegistry* metrics_;
  CostLedger* ledger_;
  Options options_;
  ExplainHandler explain_handler_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Decodes %xx escapes and '+' (query-string convention). Bad escapes are
/// passed through verbatim.
std::string UrlDecode(const std::string& s);

}  // namespace payless::obs

#endif  // PAYLESS_OBS_HTTP_EXPOSITION_H_
