// Cost attribution: who spent which transaction on which dataset.
//
// The BillingMeter answers "how much did this connector spend in total";
// the CostLedger answers "where did each dollar go" — every billed
// transaction is attributed to a (tenant, query_id, dataset) key at the
// moment the connector records it on the meter, INCLUDING post-evaluation
// lost responses (the seller billed them, so the tenant owns that waste).
// The invariant the tests enforce: for a connector wired to one ledger,
//     ledger.total_transactions() == meter.total_transactions()
// under serial, concurrent and fault-storm execution alike.
//
// query_id 0 is reserved for spend outside any single query (batch
// prefetching, download-all warm-up).
#ifndef PAYLESS_OBS_COST_LEDGER_H_
#define PAYLESS_OBS_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace payless::obs {

/// Aggregated spend of one (tenant, query, dataset) cell.
struct CostCell {
  int64_t transactions = 0;
  double price = 0.0;
  int64_t calls = 0;
  /// Subset of `transactions` billed for responses the client never used
  /// (post-evaluation lost responses). Always <= transactions.
  int64_t wasted_transactions = 0;
  /// Federation: transactions split by the market endpoint that billed
  /// them. Values sum to `transactions`; single-market deployments put
  /// everything under the "" key.
  std::map<std::string, int64_t> by_market;
};

/// Thread-safe attribution ledger. Every member serializes on one internal
/// mutex; Record is one map walk, cheap next to the market round trip it
/// accounts for.
class CostLedger {
 public:
  CostLedger() = default;
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  /// `wasted_transactions` marks how many of `transactions` bought a
  /// response the client could not use (lost after the seller billed it).
  /// `market` is the federation endpoint that billed the call ("" in
  /// single-market deployments).
  void Record(const std::string& tenant, uint64_t query_id,
              const std::string& dataset, int64_t transactions, double price,
              int64_t wasted_transactions = 0, const std::string& market = "");

  int64_t total_transactions() const;
  double total_price() const;
  int64_t total_calls() const;

  /// Lifetime spend of one tenant (all queries, all datasets).
  int64_t TenantTransactions(const std::string& tenant) const;
  double TenantPrice(const std::string& tenant) const;

  /// Per-dataset spend of one query — the QueryReport breakdown.
  std::map<std::string, int64_t> DatasetBreakdown(const std::string& tenant,
                                                  uint64_t query_id) const;

  /// Full per-dataset cells of one query (transactions, price, calls,
  /// waste) — the savings accountant's reconciliation input.
  std::map<std::string, CostCell> QueryCells(const std::string& tenant,
                                             uint64_t query_id) const;

  /// Per-dataset lifetime spend of one tenant.
  std::map<std::string, CostCell> TenantByDataset(
      const std::string& tenant) const;

  void Reset();

  /// {"total_transactions":..., "tenants":{name:{"transactions":...,
  /// "price":..., "datasets":{name: transactions}}}}
  std::string ToJson() const;

 private:
  struct TenantEntry {
    CostCell rollup;  // O(1) tenant totals for the admission hot path
    // query -> dataset -> cell; map keeps exposition deterministic.
    std::map<uint64_t, std::map<std::string, CostCell>> queries;
  };

  mutable std::mutex mutex_;
  std::map<std::string, TenantEntry> tenants_;
  CostCell total_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_COST_LEDGER_H_
