// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms with handle-based hot-path recording.
//
// Registration (name -> instrument) takes a mutex once; the returned
// handle is a stable pointer whose Record path is a handful of relaxed
// atomic operations, so instrumented hot paths (one histogram observation
// per query, one counter bump per market call) pay nanoseconds, not locks.
// Exposition walks the registry under the mutex and renders either JSON or
// the Prometheus text format, both cheap enough to serve from an admin
// endpoint.
#ifndef PAYLESS_OBS_METRICS_H_
#define PAYLESS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency.h"

namespace payless::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit +inf bucket catches the rest. Observation
/// is a linear scan over the (small, fixed) bound list plus three relaxed
/// atomics — no allocation, no lock.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds-order then the +inf bucket (size = bounds+1).
  std::vector<int64_t> BucketCounts() const;
  /// Upper bound of the bucket holding the q-quantile observation; the
  /// +inf bucket reports the last finite bound. 0 when empty.
  int64_t ValueAtQuantile(double q) const;

 private:
  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Name -> instrument registry. GetX is create-or-get: the first caller
/// defines the instrument, later callers share the same handle. Handles are
/// stable for the registry's lifetime and never invalidated.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be strictly increasing; on a repeat Get for an existing
  /// histogram the bounds argument is ignored (the first registration wins).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);
  /// Log-scale HDR histogram for tail latencies (see obs/latency.h). Same
  /// create-or-get and handle-stability contract as the other instruments.
  LatencyHistogram* GetLatencyHistogram(const std::string& name);

  /// {"counters": {name: value}, "gauges": {...}, "histograms": {name:
  /// {"count": c, "sum": s, "buckets": [{"le": bound, "count": n}, ...]}}}
  std::string ToJson() const;

  /// Flat (name, value) snapshot of every scalar the registry knows:
  /// counters and gauges verbatim, histograms (fixed and latency) as
  /// derived `<name>_count` / `<name>_sum` plus `<name>_p50` / `_p95` /
  /// `_p99` / `_p999` quantile scalars, so the time-series sampler can
  /// chart tails over time. One registry-mutex hold, relaxed atomic reads —
  /// cheap enough for a periodic sampling thread. Names are unique across
  /// kinds by construction of the exposition formats.
  std::vector<std::pair<std::string, int64_t>> SnapshotScalars() const;

  /// {"histograms": {name: {"count": c, "sum": s, "p50": ..., "p95": ...,
  /// "p99": ..., "p999": ...}}} over the latency histograms only — the
  /// payload behind the /latency route.
  std::string LatencyJson() const;

  /// Prometheus text exposition format v0.0.4 (counters as `name value`,
  /// histograms as cumulative `name_bucket{le="..."}` series).
  std::string ToPrometheusText() const;

  /// Lifetime count of name->handle lookups (each GetCounter/GetGauge/
  /// GetHistogram call; every one takes the registry mutex). Hot paths must
  /// pre-resolve handles at construction, so this count is REQUIRED to stay
  /// flat while queries are being served — the steady-state hot-path test
  /// asserts exactly that.
  int64_t lookup_count() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latency_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_METRICS_H_
