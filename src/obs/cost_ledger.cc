#include "obs/cost_ledger.h"

#include <sstream>

namespace payless::obs {

void CostLedger::Record(const std::string& tenant, uint64_t query_id,
                        const std::string& dataset, int64_t transactions,
                        double price, int64_t wasted_transactions,
                        const std::string& market) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantEntry& entry = tenants_[tenant];
  CostCell& cell = entry.queries[query_id][dataset];
  cell.transactions += transactions;
  cell.price += price;
  cell.calls += 1;
  cell.wasted_transactions += wasted_transactions;
  cell.by_market[market] += transactions;
  entry.rollup.transactions += transactions;
  entry.rollup.price += price;
  entry.rollup.calls += 1;
  entry.rollup.wasted_transactions += wasted_transactions;
  entry.rollup.by_market[market] += transactions;
  total_.transactions += transactions;
  total_.price += price;
  total_.calls += 1;
  total_.wasted_transactions += wasted_transactions;
  total_.by_market[market] += transactions;
}

int64_t CostLedger::total_transactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.transactions;
}

double CostLedger::total_price() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.price;
}

int64_t CostLedger::total_calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.calls;
}

int64_t CostLedger::TenantTransactions(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rollup.transactions;
}

double CostLedger::TenantPrice(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.rollup.price;
}

std::map<std::string, int64_t> CostLedger::DatasetBreakdown(
    const std::string& tenant, uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, int64_t> breakdown;
  const auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) return breakdown;
  const auto query_it = tenant_it->second.queries.find(query_id);
  if (query_it == tenant_it->second.queries.end()) return breakdown;
  for (const auto& [dataset, cell] : query_it->second) {
    breakdown[dataset] = cell.transactions;
  }
  return breakdown;
}

std::map<std::string, CostCell> CostLedger::QueryCells(
    const std::string& tenant, uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) return {};
  const auto query_it = tenant_it->second.queries.find(query_id);
  if (query_it == tenant_it->second.queries.end()) return {};
  return query_it->second;
}

std::map<std::string, CostCell> CostLedger::TenantByDataset(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, CostCell> by_dataset;
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return by_dataset;
  for (const auto& [query, datasets] : it->second.queries) {
    for (const auto& [dataset, cell] : datasets) {
      CostCell& agg = by_dataset[dataset];
      agg.transactions += cell.transactions;
      agg.price += cell.price;
      agg.calls += cell.calls;
      agg.wasted_transactions += cell.wasted_transactions;
      for (const auto& [market, tx] : cell.by_market) {
        agg.by_market[market] += tx;
      }
    }
  }
  return by_dataset;
}

void CostLedger::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  tenants_.clear();
  total_ = CostCell{};
}

std::string CostLedger::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"total_transactions\":" << total_.transactions
     << ",\"total_price\":" << total_.price << ",\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [tenant, entry] : tenants_) {
    if (!first_tenant) os << ",";
    first_tenant = false;
    os << "\"" << tenant
       << "\":{\"transactions\":" << entry.rollup.transactions
       << ",\"price\":" << entry.rollup.price << ",\"datasets\":{";
    // Re-aggregate per dataset across queries for the tenant view.
    std::map<std::string, int64_t> by_dataset;
    for (const auto& [query, datasets] : entry.queries) {
      for (const auto& [dataset, cell] : datasets) {
        by_dataset[dataset] += cell.transactions;
      }
    }
    bool first_ds = true;
    for (const auto& [dataset, tx] : by_dataset) {
      if (!first_ds) os << ",";
      first_ds = false;
      os << "\"" << dataset << "\":" << tx;
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace payless::obs
