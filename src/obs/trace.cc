#include "obs/trace.h"

#include <sstream>

namespace payless::obs {

uint64_t Trace::StartSpan(std::string name, uint64_t parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.start_micros = NowMicros();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

bool Trace::EndSpan(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return false;
  SpanRecord& span = spans_[id - 1];
  if (span.closed()) return false;
  span.duration_micros = NowMicros() - span.start_micros;
  return true;
}

void Trace::AddAttr(uint64_t id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void Trace::AddAttr(uint64_t id, std::string key, int64_t value) {
  AddAttr(id, std::move(key), std::to_string(value));
}

size_t Trace::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<SpanRecord> Trace::TakeSpans() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(spans_);
}

namespace {

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

std::string SpansToJson(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) os << ",";
    os << "{\"id\":" << span.id << ",\"parent\":" << span.parent
       << ",\"name\":\"";
    AppendJsonEscaped(os, span.name);
    os << "\",\"start_us\":" << span.start_micros
       << ",\"duration_us\":" << span.duration_micros << ",\"attrs\":{";
    for (size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) os << ",";
      os << "\"";
      AppendJsonEscaped(os, span.attrs[a].first);
      os << "\":\"";
      AppendJsonEscaped(os, span.attrs[a].second);
      os << "\"";
    }
    os << "}}";
  }
  os << "]";
  return os.str();
}

Result<std::unique_ptr<JsonlTraceSink>> JsonlTraceSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace sink '" + path + "'");
  }
  return std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink(file));
}

JsonlTraceSink::~JsonlTraceSink() { std::fclose(file_); }

void JsonlTraceSink::Emit(const std::string& tenant, uint64_t query_id,
                          const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"tenant\":\"";
  AppendJsonEscaped(os, tenant);
  os << "\",\"query_id\":" << query_id << ",\"spans\":" << SpansToJson(spans)
     << "}\n";
  const std::string line = os.str();
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++lines_;
}

int64_t JsonlTraceSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace payless::obs
