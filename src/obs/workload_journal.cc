#include "obs/workload_journal.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/binio.h"

namespace payless::obs {

namespace {

constexpr uint8_t kRecordVersion = 1;
constexpr char kSegmentPrefix[] = "journal-";
constexpr char kSegmentSuffix[] = ".seg";

std::string SegmentPath(const std::string& dir, size_t index) {
  std::ostringstream os;
  os << dir << "/" << kSegmentPrefix;
  os.width(6);
  os.fill('0');
  os << index << kSegmentSuffix;
  return os.str();
}

/// Segment files under `dir`, sorted by index (the zero-padded name makes
/// lexicographic order the rotation order).
std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) == 0 &&
        name.size() > sizeof(kSegmentSuffix) &&
        name.compare(name.size() + 1 - sizeof(kSegmentSuffix),
                     sizeof(kSegmentSuffix) - 1, kSegmentSuffix) == 0) {
      segments.push_back(entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

size_t SegmentIndexOf(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  const size_t begin = sizeof(kSegmentPrefix) - 1;
  const size_t end = name.size() - (sizeof(kSegmentSuffix) - 1);
  size_t index = 0;
  for (size_t i = begin; i < end; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    index = index * 10 + static_cast<size_t>(name[i] - '0');
  }
  return index;
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

std::string EncodeWorkloadRecord(const WorkloadRecord& record) {
  std::string out;
  common::BinWriter w(&out);
  w.U8(kRecordVersion);
  w.U64(record.seq);
  w.Str(record.tenant);
  w.Str(record.sql);
  w.U32(static_cast<uint32_t>(record.params.size()));
  for (const Value& v : record.params) common::WriteValue(w, v);
  w.I64(record.arrival_us);
  w.U32(static_cast<uint32_t>(record.status_code));
  w.I64(record.transactions);
  w.I64(record.result_rows);
  w.I64(record.latency_us);
  return out;
}

bool DecodeWorkloadRecord(const std::string& payload, WorkloadRecord* out) {
  common::BinReader r(payload);
  uint8_t version = 0;
  if (!r.U8(&version) || version != kRecordVersion) return false;
  uint32_t num_params = 0;
  if (!r.U64(&out->seq) || !r.Str(&out->tenant) || !r.Str(&out->sql) ||
      !r.U32(&num_params)) {
    return false;
  }
  out->params.clear();
  out->params.reserve(num_params);
  for (uint32_t i = 0; i < num_params; ++i) {
    Value v;
    if (!common::ReadValue(r, &v)) return false;
    out->params.push_back(std::move(v));
  }
  uint32_t status_code = 0;
  if (!r.I64(&out->arrival_us) || !r.U32(&status_code) ||
      !r.I64(&out->transactions) || !r.I64(&out->result_rows) ||
      !r.I64(&out->latency_us)) {
    return false;
  }
  out->status_code = static_cast<int32_t>(status_code);
  return r.ok() && r.remaining() == 0;
}

JournalReadResult ReadJournal(const std::string& dir) {
  JournalReadResult result;
  for (const std::string& path : ListSegments(dir)) {
    const common::FrameReadResult frames = common::ReadFramedFile(path);
    ++result.segments;
    result.total_bytes += frames.total_bytes;
    // A torn tail inside an older segment loses that segment's tail only:
    // records are self-contained, so later segments still decode.
    result.torn_tail = result.torn_tail || frames.torn_tail;
    for (const std::string& payload : frames.payloads) {
      WorkloadRecord record;
      if (DecodeWorkloadRecord(payload, &record)) {
        result.records.push_back(std::move(record));
      } else {
        ++result.decode_failures;
      }
    }
  }
  return result;
}

WorkloadJournal::WorkloadJournal(WorkloadJournalOptions options)
    : options_(std::move(options)), epoch_(std::chrono::steady_clock::now()) {}

WorkloadJournal::~WorkloadJournal() = default;

Result<std::unique_ptr<WorkloadJournal>> WorkloadJournal::Open(
    WorkloadJournalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("workload journal needs a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("workload journal mkdir '" + options.dir +
                            "': " + ec.message());
  }

  auto journal =
      std::unique_ptr<WorkloadJournal>(new WorkloadJournal(std::move(options)));

  // Resume after whatever is already durable: rebuild the counters from one
  // read pass and continue seq numbering past the last record. Journals are
  // observability artifacts of bounded size, so the scan is cheap.
  const JournalReadResult existing = ReadJournal(journal->options_.dir);
  journal->segments_ = existing.segments;
  journal->records_ = static_cast<int64_t>(existing.records.size());
  for (const WorkloadRecord& record : existing.records) {
    journal->next_seq_ = std::max(journal->next_seq_, record.seq + 1);
    TenantStats& t = journal->by_tenant_[record.tenant];
    if (t.records == 0) t.first_arrival_us = record.arrival_us;
    ++t.records;
    t.transactions += record.transactions;
    if (record.status_code != 0) ++t.failures;
    t.last_arrival_us = std::max(t.last_arrival_us, record.arrival_us);
  }

  const std::vector<std::string> segments =
      ListSegments(journal->options_.dir);
  size_t max_index = 0;
  int64_t total_bytes = 0;
  for (const std::string& path : segments) {
    max_index = std::max(max_index, SegmentIndexOf(path));
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(path, size_ec);
    if (!size_ec) total_bytes += static_cast<int64_t>(size);
  }
  journal->next_segment_index_ = max_index + 1;

  // Append to the newest segment unless it is torn (appending after a torn
  // tail would hide every later record from the reader, which stops at the
  // first invalid frame) or already past the rotation threshold.
  bool resume_last = false;
  if (!segments.empty()) {
    const common::FrameReadResult tail =
        common::ReadFramedFile(segments.back());
    resume_last = !tail.torn_tail &&
                  tail.total_bytes < journal->options_.rotate_bytes;
  }
  if (resume_last) {
    journal->segment_ =
        std::make_unique<common::FramedAppendFile>(segments.back());
    PAYLESS_RETURN_IF_ERROR(journal->segment_->Open());
    journal->sealed_bytes_ = total_bytes - journal->segment_->size_bytes();
  } else {
    journal->sealed_bytes_ = total_bytes;
    PAYLESS_RETURN_IF_ERROR(journal->RotateLocked());
  }
  return journal;
}

int64_t WorkloadJournal::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Status WorkloadJournal::RotateLocked() {
  if (segment_ != nullptr) {
    sealed_bytes_ += segment_->size_bytes();
    segment_->Close();
  }
  segment_ = std::make_unique<common::FramedAppendFile>(
      SegmentPath(options_.dir, next_segment_index_));
  ++next_segment_index_;
  ++segments_;
  return segment_->Open();
}

Status WorkloadJournal::Append(WorkloadRecord record) {
  std::unique_lock<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  if (segment_->size_bytes() >= options_.rotate_bytes) {
    PAYLESS_RETURN_IF_ERROR(RotateLocked());
  }
  const std::string payload = EncodeWorkloadRecord(record);
  PAYLESS_RETURN_IF_ERROR(
      segment_->Append(payload, options_.fsync_each_append));
  ++records_;
  TenantStats& t = by_tenant_[record.tenant];
  if (t.records == 0) t.first_arrival_us = record.arrival_us;
  ++t.records;
  t.transactions += record.transactions;
  if (record.status_code != 0) ++t.failures;
  t.last_arrival_us = std::max(t.last_arrival_us, record.arrival_us);
  return Status::OK();
}

WorkloadJournal::Stats WorkloadJournal::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats stats;
  stats.next_seq = next_seq_;
  stats.records = records_;
  stats.bytes = sealed_bytes_ + (segment_ != nullptr ? segment_->size_bytes()
                                                     : 0);
  stats.segments = segments_;
  stats.by_tenant = by_tenant_;
  return stats;
}

std::string WorkloadJournal::StatsJson() const {
  const Stats s = stats();
  std::ostringstream os;
  os << "{\"dir\":\"";
  AppendJsonEscaped(os, options_.dir);
  os << "\",\"next_seq\":" << s.next_seq << ",\"records\":" << s.records
     << ",\"bytes\":" << s.bytes << ",\"segments\":" << s.segments
     << ",\"rotate_bytes\":" << options_.rotate_bytes << ",\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, t] : s.by_tenant) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    AppendJsonEscaped(os, tenant);
    // Arrival rate over the tenant's observed window; one lone record has
    // no window, so rate 0 rather than a division by zero.
    const int64_t window_us = t.last_arrival_us - t.first_arrival_us;
    const double rate =
        window_us > 0
            ? static_cast<double>(t.records - 1) * 1e6 /
                  static_cast<double>(window_us)
            : 0.0;
    os << "\":{\"records\":" << t.records
       << ",\"transactions\":" << t.transactions
       << ",\"failures\":" << t.failures
       << ",\"first_arrival_us\":" << t.first_arrival_us
       << ",\"last_arrival_us\":" << t.last_arrival_us
       << ",\"rate_qps\":" << rate << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace payless::obs
