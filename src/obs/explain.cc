#include "obs/explain.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/accuracy.h"

namespace payless::obs {

namespace {

/// Looks up an attr by key; returns nullptr when absent.
const std::string* FindAttr(const SpanRecord& span, const char* key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t AttrInt(const SpanRecord& span, const char* key, int64_t fallback) {
  const std::string* raw = FindAttr(span, key);
  if (raw == nullptr) return fallback;
  return std::strtoll(raw->c_str(), nullptr, 10);
}

std::string FormatQError(double qerror) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", qerror);
  return buf;
}

/// One access line: `kind table [on (cols)] ~est...`.
void AppendAccessLine(std::ostringstream& os, const core::AccessSpec& access,
                      const sql::BoundQuery& query) {
  const sql::BoundRelation& rel = query.relations[access.rel];
  os << "  " << core::AccessKindName(access.kind) << " " << rel.def->name;
  // Federation: where this access buys (absent in single-market plans).
  if (!access.buy_site.empty()) os << " @" << access.buy_site;
  if (access.kind == core::AccessSpec::Kind::kBind) {
    os << " on (";
    for (size_t i = 0; i < access.bind_edges.size(); ++i) {
      if (i > 0) os << ", ";
      const sql::JoinEdge& e = access.bind_edges[i];
      const sql::BoundColumnRef& own =
          e.left.rel == access.rel ? e.left : e.right;
      os << rel.def->columns[own.col].name;
    }
    os << ")";
  }
  if (!access.IsZeroPrice()) {
    os << " ~" << access.est_transactions << " txn, ~" << access.est_calls
       << " calls, ~" << access.est_rows << " rows";
    if (access.kind == core::AccessSpec::Kind::kBind) {
      os << ", ~" << access.est_bind_values << " bind values";
    }
    if (access.used_sqr) os << " (SQR)";
  }
  os << "\n";
}

}  // namespace

std::vector<AccessActuals> JoinAccessActuals(
    const std::vector<SpanRecord>& spans, size_t num_accesses) {
  std::vector<AccessActuals> actuals(num_accesses);
  // Access-span id -> plan position, for attributing each market-call
  // child span. Trace span ids are 1-based and bounded by the span count.
  std::vector<int64_t> position_of_span(spans.size() + 1, -1);

  for (const SpanRecord& span : spans) {
    if (span.name.rfind("access:", 0) != 0) continue;
    const int64_t index = AttrInt(span, "access_index", -1);
    if (index < 0 || static_cast<size_t>(index) >= num_accesses) continue;
    AccessActuals& a = actuals[static_cast<size_t>(index)];
    a.present = true;
    a.rows = AttrInt(span, "rows", 0);
    a.calls = AttrInt(span, "calls", 0);
    a.transactions = AttrInt(span, "transactions", 0);
    a.rows_from_market = AttrInt(span, "rows_from_market", 0);
    if (span.id < position_of_span.size()) {
      position_of_span[span.id] = index;
    }
  }
  for (const SpanRecord& span : spans) {
    if (span.parent == 0 || span.parent >= position_of_span.size()) continue;
    const int64_t index = position_of_span[span.parent];
    if (index < 0) continue;
    AccessActuals& a = actuals[static_cast<size_t>(index)];
    a.retries += AttrInt(span, "retries", 0);
    a.wasted_transactions += AttrInt(span, "wasted_transactions", 0);
  }
  return actuals;
}

std::string RenderPlan(const core::Plan& plan, const sql::BoundQuery& query) {
  return RenderExplain(plan, query, ExplainContext{});
}

std::string RenderExplain(const core::Plan& plan, const sql::BoundQuery& query,
                          const ExplainContext& context) {
  std::ostringstream os;
  os << "Plan[cost=" << plan.est_cost
     << " txn, est_rows=" << plan.est_result_rows << "]\n";
  for (size_t i = 0; i < plan.accesses.size(); ++i) {
    const core::AccessSpec& access = plan.accesses[i];
    AppendAccessLine(os, access, query);
    if (context.actuals != nullptr && i < context.actuals->size()) {
      const AccessActuals& a = (*context.actuals)[i];
      if (!a.present) {
        os << "    actual: (not executed)\n";
        continue;
      }
      os << "    actual: " << a.transactions << " txn, " << a.calls
         << " calls, " << a.rows << " rows";
      if (a.retries > 0 || a.wasted_transactions > 0) {
        os << ", " << a.retries << " retries, " << a.wasted_transactions
           << " wasted txn";
      }
      if (!access.IsZeroPrice()) {
        const double qerror = AccuracyTracker::QError(
            static_cast<double>(access.est_transactions),
            static_cast<double>(a.transactions));
        os << ", q-error(txn) " << FormatQError(qerror);
      }
      os << "\n";
    }
  }
  if (context.counters != nullptr) {
    const core::PlanningCounters& c = *context.counters;
    os << "planning: evaluated_plans=" << c.evaluated_plans
       << " enumerated_bboxes=" << c.enumerated_bboxes
       << " kept_bboxes=" << c.kept_bboxes
       << " cache_hits=" << c.plan_cache_hits
       << " cache_misses=" << c.plan_cache_misses << "\n";
  }
  if (context.stats != nullptr) {
    for (const core::AccessSpec& access : plan.accesses) {
      const sql::BoundRelation& rel = query.relations[access.rel];
      if (!rel.is_market()) continue;
      const stats::EstimatorInfo info = context.stats->Info(rel.def->name);
      os << "stats: " << rel.def->name << " buckets=" << info.buckets
         << " feedbacks=" << info.feedbacks
         << " est_cardinality=" << info.total_count << "\n";
    }
  }
  if (context.transactions_spent >= 0) {
    os << "spent: " << context.transactions_spent << " txn\n";
  }
  if (context.counterfactual_transactions >= 0) {
    os << "counterfactual: " << context.counterfactual_transactions
       << " txn, saved: " << context.savings_transactions << " txn";
    if (context.counterfactual_transactions > 0) {
      const double pct = 100.0 *
                         static_cast<double>(context.savings_transactions) /
                         static_cast<double>(
                             context.counterfactual_transactions);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " (%.1f%%)", pct);
      os << buf;
    }
    os << "\n";
  }
  if (context.latency_us >= 0) {
    char buf[160];
    if (context.stage_micros != nullptr) {
      const double plan_ms =
          static_cast<double>(context.stage_micros[kStageParsePlan] +
                              context.stage_micros[kStagePlanCacheProbe]) /
          1000.0;
      const double market_ms =
          static_cast<double>(context.stage_micros[kStageFetch]) / 1000.0;
      const double eval_ms =
          static_cast<double>(context.stage_micros[kStageLocalEval] +
                              context.stage_micros[kStageMerge]) /
          1000.0;
      std::snprintf(buf, sizeof(buf),
                    "latency: %.1f ms (plan %.1f, market %.1f, eval %.1f)\n",
                    static_cast<double>(context.latency_us) / 1000.0, plan_ms,
                    market_ms, eval_ms);
    } else {
      std::snprintf(buf, sizeof(buf), "latency: %.1f ms\n",
                    static_cast<double>(context.latency_us) / 1000.0);
    }
    os << buf;
  }
  return os.str();
}

}  // namespace payless::obs
