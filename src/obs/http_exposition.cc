#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace payless::obs {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string NotFound() {
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "not found\n");
}

/// Writes the whole buffer, riding out EINTR and partial writes.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

HttpExpositionServer::HttpExpositionServer(MetricsRegistry* metrics,
                                           CostLedger* ledger, Options options)
    : metrics_(metrics), ledger_(ledger), options_(std::move(options)) {}

HttpExpositionServer::~HttpExpositionServer() { Stop(); }

void HttpExpositionServer::SetExplainHandler(ExplainHandler handler) {
  explain_handler_ = std::move(handler);
}

Status HttpExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("exposition server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                            std::to_string(options_.port) + "): " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocking accept(); close() alone is not reliably
  // enough on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExpositionServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // socket shut down (Stop) or unrecoverable
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpExpositionServer::HandleConnection(int fd) {
  // One small request; only the request line matters. 8 KiB caps any
  // garbage a misbehaving client throws at the admin port.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line

  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                              "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed",
                              "text/plain; charset=utf-8",
                              "only GET is supported\n"));
    return;
  }
  WriteAll(fd, Respond(target));
}

std::string HttpExpositionServer::Respond(const std::string& target) const {
  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  if (path == "/metrics") {
    if (metrics_ == nullptr) return NotFound();
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        metrics_->ToPrometheusText());
  }
  if (path == "/metrics.json") {
    if (metrics_ == nullptr) return NotFound();
    return HttpResponse(200, "OK", "application/json", metrics_->ToJson());
  }
  if (path == "/ledger") {
    if (ledger_ == nullptr) return NotFound();
    return HttpResponse(200, "OK", "application/json", ledger_->ToJson());
  }
  if (path == "/explain") {
    if (!explain_handler_) return NotFound();
    // q=<urlencoded sql>, anywhere in the query string.
    std::string sql;
    size_t pos = 0;
    while (pos < query.size()) {
      size_t amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(pos, amp - pos);
      if (pair.rfind("q=", 0) == 0) sql = UrlDecode(pair.substr(2));
      pos = amp + 1;
    }
    if (sql.empty()) {
      return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                          "missing q= parameter\n");
    }
    const Result<std::string> rendered = explain_handler_(sql);
    if (!rendered.ok()) {
      return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                          rendered.status().ToString() + "\n");
    }
    return HttpResponse(200, "OK", "text/plain; charset=utf-8", *rendered);
  }
  return NotFound();
}

}  // namespace payless::obs
