#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/dashboard.h"

namespace payless::obs {

namespace {

// Request hygiene caps: a request line longer than kMaxRequestLine gets
// 414; a connection never buffers more than kMaxRequestBytes.
constexpr size_t kMaxRequestLine = 4096;
constexpr size_t kMaxRequestBytes = 8192;

// /timeseries?name=... — names longer than this are garbage, not metrics.
constexpr size_t kMaxSeriesName = 256;

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 414:
      return "URI Too Long";
    default:
      return "Error";
  }
}

std::string RenderReply(const HttpReply& reply) {
  std::string out = "HTTP/1.1 " + std::to_string(reply.status) + " " +
                    ReasonPhrase(reply.status) +
                    "\r\nContent-Type: " + reply.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(reply.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += reply.body;
  return out;
}

HttpReply NotFound() { return HttpReply::Text(404, "not found\n"); }

/// Writes the whole buffer, riding out EINTR and partial writes.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

HttpReply HttpReply::Json(std::string body) {
  return HttpReply{200, "application/json", std::move(body)};
}

HttpReply HttpReply::Html(std::string body) {
  return HttpReply{200, "text/html; charset=utf-8", std::move(body)};
}

HttpReply HttpReply::Text(int status, std::string body) {
  return HttpReply{status, "text/plain; charset=utf-8", std::move(body)};
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string QueryParam(const std::string& query, const std::string& key) {
  std::string value;
  const std::string prefix = key + "=";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (pair.rfind(prefix, 0) == 0) {
      value = UrlDecode(pair.substr(prefix.size()));
    }
    pos = amp + 1;
  }
  return value;
}

HttpExpositionServer::HttpExpositionServer(MetricsRegistry* metrics,
                                           CostLedger* ledger, Options options)
    : metrics_(metrics), ledger_(ledger), options_(std::move(options)) {
  InstallBuiltinRoutes();
}

HttpExpositionServer::~HttpExpositionServer() { Stop(); }

void HttpExpositionServer::InstallBuiltinRoutes() {
  routes_["/metrics"] = [this](const std::string&) {
    if (metrics_ == nullptr) return NotFound();
    return HttpReply{200, "text/plain; version=0.0.4; charset=utf-8",
                     metrics_->ToPrometheusText()};
  };
  routes_["/metrics.json"] = [this](const std::string&) {
    if (metrics_ == nullptr) return NotFound();
    return HttpReply::Json(metrics_->ToJson());
  };
  routes_["/ledger"] = [this](const std::string&) {
    if (ledger_ == nullptr) return NotFound();
    return HttpReply::Json(ledger_->ToJson());
  };
  routes_["/explain"] = [this](const std::string& query) {
    if (!explain_handler_) return NotFound();
    const std::string sql = QueryParam(query, "q");
    if (sql.empty()) {
      return HttpReply::Text(400, "missing q= parameter\n");
    }
    if (sql.size() > kMaxRequestLine) {
      return HttpReply::Text(400, "q= parameter too long\n");
    }
    const Result<std::string> rendered = explain_handler_(sql);
    if (!rendered.ok()) {
      return HttpReply::Text(400, rendered.status().ToString() + "\n");
    }
    return HttpReply::Text(200, *rendered);
  };
  routes_["/dashboard"] = [](const std::string&) {
    return HttpReply::Html(DashboardHtml());
  };
}

void HttpExpositionServer::AddRoute(const std::string& path,
                                    RouteHandler handler) {
  routes_[path] = std::move(handler);
}

void HttpExpositionServer::SetExplainHandler(ExplainHandler handler) {
  explain_handler_ = std::move(handler);
}

void HttpExpositionServer::SetSavingsLedger(SavingsLedger* savings) {
  if (savings == nullptr) {
    routes_.erase("/savings");
    return;
  }
  routes_["/savings"] = [savings](const std::string&) {
    return HttpReply::Json(savings->ToJson());
  };
}

void HttpExpositionServer::SetStoreStatsProvider(
    std::function<std::string()> provider) {
  if (!provider) {
    routes_.erase("/store");
    return;
  }
  routes_["/store"] = [provider = std::move(provider)](const std::string&) {
    return HttpReply::Json(provider());
  };
}

void HttpExpositionServer::SetTimeSeriesSampler(TimeSeriesSampler* sampler) {
  if (sampler == nullptr) {
    routes_.erase("/timeseries");
    return;
  }
  routes_["/timeseries"] = [sampler](const std::string& query) {
    if (query.empty()) return HttpReply::Json(sampler->IndexJson());
    const std::string name = QueryParam(query, "name");
    if (name.empty()) {
      return HttpReply::Text(400, "missing or empty name= parameter\n");
    }
    if (name.size() > kMaxSeriesName) {
      return HttpReply::Text(400, "name= parameter too long\n");
    }
    const std::vector<std::string> names = sampler->Names();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      return HttpReply::Text(404, "unknown series\n");
    }
    return HttpReply::Json(sampler->SeriesJson(name));
  };
}

Status HttpExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("exposition server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                            std::to_string(options_.port) + "): " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname(): " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocking accept(); close() alone is not reliably
  // enough on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExpositionServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // socket shut down (Stop) or unrecoverable
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpExpositionServer::HandleConnection(int fd) {
  // One small request; only the request line matters. kMaxRequestBytes
  // caps any garbage a misbehaving client throws at the admin port.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) {
      WriteAll(fd, RenderReply(
                       HttpReply::Text(414, "request line too long\n")));
    }
    return;  // nothing parseable arrived
  }
  if (line_end > kMaxRequestLine) {
    WriteAll(fd,
             RenderReply(HttpReply::Text(414, "request line too long\n")));
    return;
  }

  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd,
             RenderReply(HttpReply::Text(400, "malformed request line\n")));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET" && method != "HEAD") {
    WriteAll(fd,
             RenderReply(HttpReply::Text(405, "only GET is supported\n")));
    return;
  }
  std::string response = Respond(target);
  if (method == "HEAD") {
    // Headers only, Content-Length of the would-have-been GET body.
    const size_t header_end = response.find("\r\n\r\n");
    if (header_end != std::string::npos) response.resize(header_end + 4);
  }
  WriteAll(fd, response);
}

std::string HttpExpositionServer::Respond(const std::string& target) const {
  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  const auto it = routes_.find(path);
  if (it == routes_.end()) return RenderReply(NotFound());
  return RenderReply(it->second(query));
}

}  // namespace payless::obs
