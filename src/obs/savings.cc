#include "obs/savings.h"

#include <sstream>

namespace payless::obs {
namespace {

void Fold(SavingsCell& into, int64_t counterfactual, int64_t actual,
          const int64_t by_cause[kNumSavingsCauses],
          const std::map<std::string, int64_t>* actual_by_market) {
  into.counterfactual += counterfactual;
  into.actual += actual;
  into.savings += counterfactual - actual;
  into.queries += 1;
  for (int i = 0; i < kNumSavingsCauses; ++i) into.by_cause[i] += by_cause[i];
  if (actual_by_market != nullptr) {
    for (const auto& [market, tx] : *actual_by_market) {
      into.actual_by_market[market] += tx;
    }
  }
}

void CellJson(std::ostringstream& os, const SavingsCell& cell) {
  os << "{\"counterfactual\":" << cell.counterfactual
     << ",\"actual\":" << cell.actual << ",\"savings\":" << cell.savings
     << ",\"queries\":" << cell.queries << ",\"by_cause\":{";
  for (int i = 0; i < kNumSavingsCauses; ++i) {
    if (i > 0) os << ",";
    os << "\"" << SavingsCauseName(static_cast<SavingsCause>(i))
       << "\":" << cell.by_cause[i];
  }
  os << "}";
  if (!cell.actual_by_market.empty()) {
    os << ",\"by_market\":{";
    bool first = true;
    for (const auto& [market, tx] : cell.actual_by_market) {
      if (!first) os << ",";
      first = false;
      os << "\"" << (market.empty() ? "primary" : market) << "\":" << tx;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

const char* SavingsCauseName(SavingsCause cause) {
  switch (cause) {
    case SavingsCause::kStoreFullHit:
      return "store_full_hit";
    case SavingsCause::kSqrHarvest:
      return "sqr_harvest";
    case SavingsCause::kLearnedSwitch:
      return "learned_switch";
    case SavingsCause::kPlanReuse:
      return "plan_reuse";
    case SavingsCause::kEstimate:
      return "estimate_correction";
    case SavingsCause::kFederationRouting:
      return "federation_routing";
    case SavingsCause::kWaste:
      return "waste";
  }
  return "unknown";
}

void SavingsLedger::Record(
    const std::string& tenant, const std::string& dataset,
    int64_t counterfactual, int64_t actual,
    const int64_t by_cause[kNumSavingsCauses],
    const std::map<std::string, int64_t>* actual_by_market) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantEntry& entry = tenants_[tenant];
  Fold(entry.datasets[dataset], counterfactual, actual, by_cause,
       actual_by_market);
  Fold(entry.rollup, counterfactual, actual, by_cause, actual_by_market);
  Fold(total_, counterfactual, actual, by_cause, actual_by_market);
}

int64_t SavingsLedger::total_counterfactual() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.counterfactual;
}

int64_t SavingsLedger::total_actual() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.actual;
}

int64_t SavingsLedger::total_savings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.savings;
}

int64_t SavingsLedger::total_by_cause(SavingsCause cause) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.by_cause[static_cast<int>(cause)];
}

int64_t SavingsLedger::TenantCounterfactual(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rollup.counterfactual;
}

int64_t SavingsLedger::TenantActual(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rollup.actual;
}

int64_t SavingsLedger::TenantSavings(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rollup.savings;
}

std::map<std::string, SavingsCell> SavingsLedger::TenantByDataset(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? std::map<std::string, SavingsCell>{}
                              : it->second.datasets;
}

bool SavingsLedger::CellReconciles(const SavingsCell& cell) {
  if (cell.counterfactual != cell.actual + cell.savings) return false;
  int64_t cause_sum = 0;
  for (int i = 0; i < kNumSavingsCauses; ++i) cause_sum += cell.by_cause[i];
  if (cause_sum != cell.savings) return false;
  // Federation: when a per-market breakdown was recorded it must account
  // for the cell's entire actual spend.
  if (!cell.actual_by_market.empty()) {
    int64_t market_sum = 0;
    for (const auto& [market, tx] : cell.actual_by_market) market_sum += tx;
    if (market_sum != cell.actual) return false;
  }
  return true;
}

bool SavingsLedger::Reconciles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!CellReconciles(total_)) return false;
  for (const auto& [tenant, entry] : tenants_) {
    if (!CellReconciles(entry.rollup)) return false;
    for (const auto& [dataset, cell] : entry.datasets) {
      if (!CellReconciles(cell)) return false;
    }
  }
  return true;
}

void SavingsLedger::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  tenants_.clear();
  total_ = SavingsCell{};
}

std::string SavingsLedger::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"total\":";
  CellJson(os, total_);
  os << ",\"tenants\":{";
  bool first_tenant = true;
  for (const auto& [tenant, entry] : tenants_) {
    if (!first_tenant) os << ",";
    first_tenant = false;
    os << "\"" << tenant << "\":{\"rollup\":";
    CellJson(os, entry.rollup);
    os << ",\"datasets\":{";
    bool first_ds = true;
    for (const auto& [dataset, cell] : entry.datasets) {
      if (!first_ds) os << ",";
      first_ds = false;
      os << "\"" << dataset << "\":";
      CellJson(os, cell);
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace payless::obs
