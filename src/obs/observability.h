// The shared observability context: one per deployment, shared by every
// PayLess client (tenant) that should report into the same metrics, cost
// ledger and budget governor. A PayLess built without one creates a
// private context, so single-tenant users get per-dataset attribution and
// metrics for free.
#ifndef PAYLESS_OBS_OBSERVABILITY_H_
#define PAYLESS_OBS_OBSERVABILITY_H_

#include "obs/budget.h"
#include "obs/cost_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/savings.h"
#include "obs/trace.h"

namespace payless::obs {

struct Observability {
  Observability() : governor(&ledger) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  CostLedger ledger;
  SavingsLedger savings;
  BudgetGovernor governor;
  /// Always-on ring of the last N completed query traces + scheduler
  /// events; dumped on query error, budget rejection or crash.
  FlightRecorder flight_recorder;
  /// Optional: finished query traces are mirrored here (owned by the
  /// caller; must outlive every client using this context).
  TraceSink* trace_sink = nullptr;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_OBSERVABILITY_H_
