// Durable journal of the served workload: one record per ADMITTED query at
// the PayLess entry point — the normalized SQL template text, the bound
// parameters, the tenant, a virtual arrival timestamp, and an outcome
// digest (billed transactions, result rows, latency, status). The journal
// is what makes the deployment advisor possible: replaying it through
// fresh shadow clients answers "on the traffic we really served, would a
// different configuration have been cheaper?" without touching production
// state or money.
//
// On disk the journal is a directory of CRC-framed segment files (the
// shared common/framing.h discipline the harvest WAL uses): appends go to
// the newest segment, rotation starts a new one past `rotate_bytes`, and
// the reader walks segments in order, stopping inside a segment at the
// first invalid frame — the torn tail a crash mid-append leaves behind is
// reported, never applied. Recording is buffered (no fsync by default):
// the journal is an observability artifact, not the billing ledger, and
// losing the final record on a crash is acceptable where a 2% qps tax is
// not.
#ifndef PAYLESS_OBS_WORKLOAD_JOURNAL_H_
#define PAYLESS_OBS_WORKLOAD_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/framing.h"
#include "common/status.h"
#include "common/value.h"

namespace payless::obs {

struct WorkloadJournalOptions {
  /// Directory the segment files live in. Created if absent. Required.
  std::string dir;
  /// Start a new segment once the current one exceeds this many bytes.
  int64_t rotate_bytes = 4 << 20;
  /// Fsync every append. Off by default — the journal trades the last
  /// record for bounded overhead (see header comment).
  bool fsync_each_append = false;
};

/// One admitted query as the journal remembers it.
struct WorkloadRecord {
  uint64_t seq = 0;  // assigned by the journal, strictly increasing from 1
  std::string tenant;
  std::string sql;  // parameterized template text, as submitted
  std::vector<Value> params;
  /// Virtual arrival clock: microseconds since the journal opened, captured
  /// when the query entered the system (not when its record was appended).
  int64_t arrival_us = 0;
  int32_t status_code = 0;   // Status::Code of the outcome
  int64_t transactions = 0;  // billed transactions (spend-so-far on failure)
  int64_t result_rows = 0;
  int64_t latency_us = 0;
};

std::string EncodeWorkloadRecord(const WorkloadRecord& record);
bool DecodeWorkloadRecord(const std::string& payload, WorkloadRecord* out);

/// Everything one pass over a journal directory yields. Records carry the
/// seq assigned at append time; segments are walked in rotation order.
struct JournalReadResult {
  std::vector<WorkloadRecord> records;
  size_t segments = 0;         // segment files visited
  bool torn_tail = false;      // some segment ended in an invalid frame
  size_t decode_failures = 0;  // intact frames that failed record decode
  int64_t total_bytes = 0;
};

/// Reads every decodable record under `dir`. A missing or empty directory
/// is an empty journal. Never fails on torn or corrupt content.
JournalReadResult ReadJournal(const std::string& dir);

/// Append side. Thread-safe: one journal is shared by every per-tenant
/// client of a deployment, so concurrent queries append under one mutex
/// (the encode happens outside it).
class WorkloadJournal {
 public:
  /// Creates `options.dir` if needed, scans existing segments, and resumes
  /// seq numbering after the last durable record.
  static Result<std::unique_ptr<WorkloadJournal>> Open(
      WorkloadJournalOptions options);

  ~WorkloadJournal();

  WorkloadJournal(const WorkloadJournal&) = delete;
  WorkloadJournal& operator=(const WorkloadJournal&) = delete;

  /// Microseconds since the journal opened — the virtual arrival clock.
  /// Monotonic; capture at query entry, store in the record.
  int64_t NowMicros() const;

  /// Assigns the record's seq and appends it to the newest segment,
  /// rotating first when the segment is past `rotate_bytes`.
  Status Append(WorkloadRecord record);

  /// Point-in-time counters, all maintained inline (no directory scan).
  struct TenantStats {
    int64_t records = 0;
    int64_t transactions = 0;
    int64_t failures = 0;  // records whose status_code != kOk
    int64_t first_arrival_us = 0;
    int64_t last_arrival_us = 0;
  };
  struct Stats {
    uint64_t next_seq = 1;  // the seq the next append will get
    int64_t records = 0;
    int64_t bytes = 0;  // across all segments, frame headers included
    size_t segments = 0;
    std::map<std::string, TenantStats> by_tenant;
  };
  Stats stats() const;

  /// The /workload document: size/seq/segment counters plus per-tenant
  /// record counts, spend, and observed arrival rates.
  std::string StatsJson() const;

  const WorkloadJournalOptions& options() const { return options_; }

 private:
  explicit WorkloadJournal(WorkloadJournalOptions options);

  Status RotateLocked();

  WorkloadJournalOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::unique_ptr<common::FramedAppendFile> segment_;
  size_t next_segment_index_ = 1;  // index the NEXT rotation will create
  uint64_t next_seq_ = 1;
  int64_t sealed_bytes_ = 0;  // bytes in rotated-out segments
  int64_t records_ = 0;
  size_t segments_ = 0;
  std::map<std::string, TenantStats> by_tenant_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_WORKLOAD_JOURNAL_H_
