// The /dashboard page: a zero-dependency, self-contained HTML admin view
// over the exposition server's JSON routes. No external assets, no
// frameworks — inline CSS + JS polling /metrics.json, /ledger, /savings,
// /store and /timeseries, rendering stat tiles (spend, counterfactual,
// net savings), a spend-vs-counterfactual trend, savings by cause, store
// coverage and the q-error trend.
#ifndef PAYLESS_OBS_DASHBOARD_H_
#define PAYLESS_OBS_DASHBOARD_H_

#include <string>

namespace payless::obs {

/// The complete dashboard document (static; all data arrives via fetch).
std::string DashboardHtml();

}  // namespace payless::obs

#endif  // PAYLESS_OBS_DASHBOARD_H_
