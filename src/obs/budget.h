// Per-tenant budget governance.
//
// Tenants get three independent knobs, all denominated in transactions
// (the market's billing unit, Eq. 1):
//   - hard cap: lifetime ceiling; admission rejects a query with
//     kBudgetExceeded once spend (plus the plan's estimated cost, when
//     known) would exceed it. Rejection happens BEFORE any market call, so
//     a rejected query bills exactly zero.
//   - soft threshold: crossing it never rejects, it only flags the query's
//     report and bumps a warning counter — the "you are at 80%" email.
//   - sliding-window rate: a cap over the trailing window; a burst-heavy
//     tenant is slowed down without touching its lifetime budget.
//
// Admission reads authoritative spend from the CostLedger (which includes
// billed-but-undelivered waste — the tenant owns it), so the governor can
// never drift from the money actually billed.
#ifndef PAYLESS_OBS_BUDGET_H_
#define PAYLESS_OBS_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/cost_ledger.h"

namespace payless::obs {

/// Budget knobs of one tenant. 0 disables the respective limit.
struct TenantBudget {
  int64_t hard_cap_transactions = 0;
  int64_t soft_warn_transactions = 0;
  int64_t window_cap_transactions = 0;
  int64_t window_micros = 1'000'000;
};

/// Outcome of an admission check.
struct Admission {
  Status status;        // OK or kBudgetExceeded
  bool soft_warning = false;  // spend is past the soft threshold
};

/// Thread-safe per-tenant admission control. Tenants without a configured
/// budget are always admitted. `now_micros < 0` (the default) reads the
/// steady clock; tests pass explicit times to drive the sliding window.
class BudgetGovernor {
 public:
  explicit BudgetGovernor(const CostLedger* ledger) : ledger_(ledger) {}
  BudgetGovernor(const BudgetGovernor&) = delete;
  BudgetGovernor& operator=(const BudgetGovernor&) = delete;

  void SetBudget(const std::string& tenant, const TenantBudget& budget);

  /// Admission check for a query estimated to cost `estimated_transactions`
  /// (0 = unknown/free). Rejects when the tenant's ledger spend plus the
  /// estimate exceeds the hard cap, or the trailing-window spend plus the
  /// estimate exceeds the window cap. `note_soft_warning=false` suppresses
  /// soft-threshold accounting — for an early pre-planning gate that will
  /// be followed by the real (estimate-carrying) check, so one query never
  /// counts its warning twice.
  Admission Admit(const std::string& tenant, int64_t estimated_transactions,
                  int64_t now_micros = -1, bool note_soft_warning = true);

  /// Feeds the sliding window with a query's actual spend (call once per
  /// finished query; the hard cap does not need this — it reads the ledger).
  void RecordSpend(const std::string& tenant, int64_t transactions,
                   int64_t now_micros = -1);

  /// Spend inside the trailing window as of `now`.
  int64_t WindowSpend(const std::string& tenant, int64_t now_micros = -1);

  /// Total soft-threshold warnings issued to one tenant.
  int64_t warnings(const std::string& tenant) const;
  /// Total queries rejected (hard cap + window) for one tenant.
  int64_t rejections(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantBudget budget;
    bool has_budget = false;
    std::deque<std::pair<int64_t, int64_t>> window;  // (time, transactions)
    int64_t window_total = 0;
    int64_t warnings = 0;
    int64_t rejections = 0;
  };

  static int64_t SteadyNowMicros();
  /// Drops window entries older than the budget's horizon.
  void PruneWindow(TenantState* state, int64_t now_micros);

  const CostLedger* ledger_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_BUDGET_H_
