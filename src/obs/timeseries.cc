#include "obs/timeseries.h"

#include <chrono>
#include <sstream>
#include <utility>

namespace payless::obs {

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry,
                                     Options options)
    : registry_(registry), options_(options) {}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread(&TimeSeriesSampler::Loop, this);
}

void TimeSeriesSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool TimeSeriesSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void TimeSeriesSampler::SampleOnce() {
  // Snapshot outside our own mutex: the registry has its own lock, and
  // holding both in a fixed order avoids any interleaving with exposition.
  const auto scalars = registry_->SnapshotScalars();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : scalars) {
    Ring& ring = series_[name];
    if (ring.data.empty()) ring.data.resize(options_.capacity, 0);
    ring.data[ring.next] = value;
    ring.next = (ring.next + 1) % options_.capacity;
    if (ring.size < options_.capacity) ++ring.size;
  }
}

std::vector<int64_t> TimeSeriesSampler::Series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  const Ring& ring = it->second;
  std::vector<int64_t> out;
  out.reserve(ring.size);
  // Oldest first: when full the write cursor IS the oldest sample.
  const size_t start =
      ring.size < options_.capacity ? 0 : ring.next % options_.capacity;
  for (size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.data[(start + i) % options_.capacity]);
  }
  return out;
}

std::vector<std::string> TimeSeriesSampler::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) names.push_back(name);
  return names;
}

std::string TimeSeriesSampler::SeriesJson(const std::string& name) const {
  const std::vector<int64_t> samples = Series(name);
  std::ostringstream os;
  os << "{\"name\":\"" << name
     << "\",\"period_micros\":" << options_.period_micros << ",\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) os << ",";
    os << samples[i];
  }
  os << "]}";
  return os.str();
}

std::string TimeSeriesSampler::IndexJson() const {
  const std::vector<std::string> names = Names();
  std::ostringstream os;
  os << "{\"period_micros\":" << options_.period_micros
     << ",\"capacity\":" << options_.capacity << ",\"series\":[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << names[i] << "\"";
  }
  os << "]}";
  return os.str();
}

void TimeSeriesSampler::Loop() {
  SampleOnce();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.period_micros),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

}  // namespace payless::obs
