// Savings attribution: what would the query have cost WITHOUT PayLess,
// and where did the realized difference come from.
//
// The CostLedger answers "where did each dollar go"; the SavingsLedger
// answers the paper's headline question (EDBT 2015 Fig. 10-15): how much
// money the middleware saved relative to the counterfactual baseline — the
// cheapest legal plan priced with the semantic store empty and no cached
// template. Every executed query contributes one record per dataset:
//
//     counterfactual == actual + savings            (per cell, by design)
//
// and the savings are attributed to causes: semantic-store full hits, SQR
// partial harvests, learned-stats plan switches, plan-template reuse,
// estimate corrections (the residual between the counterfactual ESTIMATE
// and realized billing — negative when cold uniform stats underestimate),
// and waste (lost responses the seller billed anyway; always negative).
// The causes sum to the cell's savings, so the reconciliation invariant
// holds per (tenant, dataset) under serial, concurrent and fault-storm
// execution alike.
//
// Layering: plain data + a mutex, no dependency above payless_common — the
// pricing half (which needs the optimizer) lives in savings_accountant.*.
#ifndef PAYLESS_OBS_SAVINGS_H_
#define PAYLESS_OBS_SAVINGS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace payless::obs {

/// Why a transaction was (not) spent, relative to the counterfactual plan.
enum class SavingsCause {
  kStoreFullHit = 0,  // semantic store covered the access; zero market calls
  kSqrHarvest,        // SQR priced only the uncovered remainder
  kLearnedSwitch,     // learned stats picked a cheaper plan shape
  kPlanReuse,         // cached template skipped optimization (time, not txn)
  kEstimate,          // residual: counterfactual estimate vs realized billing
  kFederationRouting, // plan-time edge of buying from a cheaper endpoint than
                      // the single-market counterfactual's buy-site
  kWaste,             // lost responses billed by the seller (negative)
};

constexpr int kNumSavingsCauses = 7;

const char* SavingsCauseName(SavingsCause cause);

/// One (tenant, dataset) accumulation cell. All figures are transactions
/// (the paper's money unit, Eq. 1).
struct SavingsCell {
  int64_t counterfactual = 0;  // what the naive plan would have billed
  int64_t actual = 0;          // what the CostLedger actually recorded
  int64_t savings = 0;         // counterfactual - actual
  int64_t queries = 0;         // records folded into this cell
  int64_t by_cause[kNumSavingsCauses] = {0, 0, 0, 0, 0, 0, 0};
  /// Federation: `actual` split by the billing endpoint. Values sum to
  /// `actual` whenever the recorder supplied a breakdown (the accountant
  /// always does; direct Record calls may omit it).
  std::map<std::string, int64_t> actual_by_market;
};

/// Thread-safe savings ledger. Record is one map walk under a mutex —
/// cheap next to the query it accounts for.
class SavingsLedger {
 public:
  SavingsLedger() = default;
  SavingsLedger(const SavingsLedger&) = delete;
  SavingsLedger& operator=(const SavingsLedger&) = delete;

  /// Fold one query's per-dataset outcome into the ledger. `by_cause`
  /// must sum to `counterfactual - actual`; an assert-free invariant the
  /// accountant maintains and the tests verify via Reconciles().
  /// `actual_by_market` (optional) splits `actual` by billing endpoint and
  /// must sum to `actual` when supplied.
  void Record(const std::string& tenant, const std::string& dataset,
              int64_t counterfactual, int64_t actual,
              const int64_t by_cause[kNumSavingsCauses],
              const std::map<std::string, int64_t>* actual_by_market = nullptr);

  int64_t total_counterfactual() const;
  int64_t total_actual() const;
  int64_t total_savings() const;
  int64_t total_by_cause(SavingsCause cause) const;

  int64_t TenantCounterfactual(const std::string& tenant) const;
  int64_t TenantActual(const std::string& tenant) const;
  int64_t TenantSavings(const std::string& tenant) const;

  /// Per-dataset cells of one tenant (copy; safe to iterate lock-free).
  std::map<std::string, SavingsCell> TenantByDataset(
      const std::string& tenant) const;

  /// True iff counterfactual == actual + savings and the causes sum to the
  /// savings, for the grand total, every tenant rollup and every
  /// (tenant, dataset) cell. The reconciliation tests' single entry point.
  bool Reconciles() const;

  void Reset();

  /// {"total":{...},"by_cause":{...},"tenants":{name:{...,"datasets":
  /// {name:{...}}}}}
  std::string ToJson() const;

 private:
  struct TenantEntry {
    SavingsCell rollup;
    std::map<std::string, SavingsCell> datasets;
  };

  static bool CellReconciles(const SavingsCell& cell);

  mutable std::mutex mutex_;
  std::map<std::string, TenantEntry> tenants_;
  SavingsCell total_;
};

}  // namespace payless::obs

#endif  // PAYLESS_OBS_SAVINGS_H_
