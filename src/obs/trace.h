// Per-query trace spans.
//
// A Trace collects the spans of ONE query: parse, bind, optimize (or plan
// cache), execution, per-operator accesses and the individual market calls
// underneath them. Spans nest via parent ids and may be started/ended from
// any thread — a bind join's per-binding-value calls run on pool workers,
// and their spans must land in the same trace as the access that spawned
// them. The finished span list travels with the QueryReport (so callers can
// answer "where did this query's time and money go" programmatically) and
// can optionally be mirrored to a JSONL sink for offline analysis.
//
// Span ids are 1-based within the trace; parent id 0 means root. Attributes
// are ordered key/value string pairs — small, flat, and good enough for
// datasets, binding values, transaction counts and retry/waste totals.
#ifndef PAYLESS_OBS_TRACE_H_
#define PAYLESS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace payless::obs {

/// One finished (or still-open) span of a query trace.
struct SpanRecord {
  uint64_t id = 0;      // 1-based within the trace
  uint64_t parent = 0;  // 0 = root span
  std::string name;
  int64_t start_micros = 0;     // relative to the trace's first span
  int64_t duration_micros = -1;  // -1 while the span is open
  std::vector<std::pair<std::string, std::string>> attrs;

  bool closed() const { return duration_micros >= 0; }
};

/// Thread-safe span collector for one query. All members lock one internal
/// mutex; spans are identified by the id StartSpan returned, so handles can
/// cross threads freely.
class Trace {
 public:
  Trace() : epoch_(std::chrono::steady_clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span; returns its id (never 0).
  uint64_t StartSpan(std::string name, uint64_t parent = 0);

  /// Closes a span. Returns false (and changes nothing) if `id` is unknown
  /// or the span is already closed — spans close exactly once.
  bool EndSpan(uint64_t id);

  void AddAttr(uint64_t id, std::string key, std::string value);
  void AddAttr(uint64_t id, std::string key, int64_t value);

  size_t num_spans() const;

  /// Moves the collected spans out (the trace becomes empty). Call after
  /// all spans are closed — open spans are surrendered as-is with
  /// duration -1.
  std::vector<SpanRecord> TakeSpans();

 private:
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// RAII close for a span; inert when `trace` is nullptr, so call sites can
/// instrument unconditionally and pay nothing when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Trace* trace, std::string name, uint64_t parent = 0)
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->StartSpan(std::move(name), parent);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }

  uint64_t id() const { return id_; }
  void AddAttr(std::string key, std::string value) {
    if (trace_ != nullptr) trace_->AddAttr(id_, std::move(key), std::move(value));
  }
  void AddAttr(std::string key, int64_t value) {
    if (trace_ != nullptr) trace_->AddAttr(id_, std::move(key), value);
  }

 private:
  Trace* trace_ = nullptr;
  uint64_t id_ = 0;
};

/// Receives every finished query trace. Implementations must be
/// thread-safe: concurrent queries finish concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const std::string& tenant, uint64_t query_id,
                    const std::vector<SpanRecord>& spans) = 0;
};

/// Appends one JSON object per query to a file:
///   {"tenant":..., "query_id":..., "spans":[{...}, ...]}
class JsonlTraceSink : public TraceSink {
 public:
  /// Truncates `path`; returns an error if the file cannot be opened.
  static Result<std::unique_ptr<JsonlTraceSink>> Open(const std::string& path);
  ~JsonlTraceSink() override;

  void Emit(const std::string& tenant, uint64_t query_id,
            const std::vector<SpanRecord>& spans) override;

  int64_t lines_written() const;

 private:
  explicit JsonlTraceSink(std::FILE* file) : file_(file) {}

  mutable std::mutex mutex_;
  std::FILE* file_;
  int64_t lines_ = 0;
};

/// Renders spans as a JSON array (shared by the sink and tests).
std::string SpansToJson(const std::vector<SpanRecord>& spans);

}  // namespace payless::obs

#endif  // PAYLESS_OBS_TRACE_H_
