#include "obs/dashboard.h"

namespace payless::obs {

// One static document. Colors are the validated reference palette (light
// and dark are separately chosen steps, selected via media query with a
// data-theme override); text always wears text tokens, series color only
// ever appears on marks. Charts are inline SVG: 2px lines, thin bars,
// one axis, legend whenever two series share a plot.
std::string DashboardHtml() {
  return R"HTML(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>PayLess — savings dashboard</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6;
    --series-2: #eb6834;
    --series-3: #1baf7a;
    --delta-good: #006300;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --delta-good: #0ca30c;
      --status-critical: #e66767;
    }
  }
  :root[data-theme="dark"] {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --delta-good: #0ca30c;
    --status-critical: #e66767;
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--text-secondary); margin: 0 0 18px; font-size: 13px; }
  .grid { display: grid; gap: 14px;
          grid-template-columns: repeat(auto-fit, minmax(300px, 1fr)); }
  .tiles { display: grid; gap: 14px; margin-bottom: 14px;
           grid-template-columns: repeat(auto-fit, minmax(170px, 1fr)); }
  .card, .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 14px 16px;
  }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .delta { font-size: 12px; color: var(--text-secondary); }
  .tile .delta.good { color: var(--delta-good); }
  .tile .delta.bad { color: var(--status-critical); }
  .card h2 { font-size: 13px; font-weight: 600; margin: 0 0 10px;
             color: var(--text-primary); }
  .legend { display: flex; gap: 14px; font-size: 12px;
            color: var(--text-secondary); margin-bottom: 6px; }
  .legend .swatch { display: inline-block; width: 10px; height: 10px;
                    border-radius: 2px; margin-right: 5px;
                    vertical-align: -1px; }
  svg { display: block; width: 100%; }
  .axisnote { color: var(--text-muted); font-size: 11px; margin-top: 4px; }
  table { width: 100%; border-collapse: collapse; font-size: 13px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 500;
       border-bottom: 1px solid var(--grid); padding: 4px 8px 4px 0; }
  td { padding: 5px 8px 5px 0; border-bottom: 1px solid var(--grid);
       font-variant-numeric: tabular-nums; }
  td.num, th.num { text-align: right; }
  .covbar { background: var(--grid); border-radius: 3px; height: 6px;
            min-width: 60px; position: relative; overflow: hidden; }
  .covbar > i { position: absolute; inset: 0 auto 0 0;
                background: var(--series-1); border-radius: 3px; }
  .barrow { display: grid; grid-template-columns: 140px 1fr 70px;
            align-items: center; gap: 10px; margin: 6px 0; font-size: 13px; }
  .barrow .name { color: var(--text-secondary);
                  overflow: hidden; text-overflow: ellipsis;
                  white-space: nowrap; }
  .barrow .trough { background: var(--grid); height: 8px; border-radius: 4px;
                    position: relative; }
  .barrow .trough > i { position: absolute; top: 0; bottom: 0;
                        border-radius: 4px; background: var(--series-1); }
  .barrow .trough > i.neg { background: var(--status-critical); }
  .barrow .val { text-align: right; font-variant-numeric: tabular-nums; }
  .stale { color: var(--text-muted); font-size: 12px; }
</style>
</head>
<body>
<h1>PayLess savings dashboard</h1>
<p class="sub">Spend vs. counterfactual, live from this process.
  <span id="stale" class="stale"></span></p>

<div class="tiles">
  <div class="tile"><div class="label">Actual spend</div>
    <div class="value" id="t-actual">–</div>
    <div class="delta" id="t-actual-d">transactions billed</div></div>
  <div class="tile"><div class="label">Counterfactual spend</div>
    <div class="value" id="t-cf">–</div>
    <div class="delta">without store / SQR / learned plans</div></div>
  <div class="tile"><div class="label">Net savings</div>
    <div class="value" id="t-save">–</div>
    <div class="delta" id="t-save-d">–</div></div>
  <div class="tile"><div class="label">Queries served</div>
    <div class="value" id="t-queries">–</div>
    <div class="delta" id="t-failq">–</div></div>
  <div class="tile"><div class="label">Durability (WAL on disk)</div>
    <div class="value" id="t-dur">–</div>
    <div class="delta" id="t-dur-d">–</div></div>
  <div class="tile"><div class="label">Federation</div>
    <div class="value" id="t-fed">–</div>
    <div class="delta" id="t-fed-d">–</div></div>
  <div class="tile"><div class="label">Latency p50 / p99</div>
    <div class="value" id="t-lat">–</div>
    <div class="delta" id="t-lat-d">–</div></div>
  <div class="tile"><div class="label">Workload journal</div>
    <div class="value" id="t-wj">–</div>
    <div class="delta" id="t-wj-d">–</div></div>
</div>

<div class="grid">
  <div class="card">
    <h2>Spend vs. counterfactual (cumulative transactions)</h2>
    <div class="legend">
      <span><span class="swatch" style="background:var(--series-1)"></span>actual</span>
      <span><span class="swatch" style="background:var(--series-2)"></span>counterfactual</span>
    </div>
    <svg id="spendchart" viewBox="0 0 560 150" height="150"
         role="img" aria-label="actual and counterfactual spend over time"></svg>
    <div class="axisnote">sampled every <span id="period">?</span>s · oldest → newest</div>
  </div>
  <div class="card">
    <h2>Savings by cause (transactions)</h2>
    <div id="causes"></div>
  </div>
  <div class="card">
    <h2>Semantic store coverage</h2>
    <table id="storetable">
      <thead><tr><th>table</th><th>views</th><th class="num">rows</th>
        <th>covered</th><th class="num">hit rate</th></tr></thead>
      <tbody></tbody>
    </table>
  </div>
  <div class="card">
    <h2>Latency by stage (p99, µs)</h2>
    <div id="stagebars"></div>
    <div class="axisnote">flight recorder: <span id="fr">–</span></div>
  </div>
  <div class="card">
    <h2>Estimator q-error (last observed ×100)</h2>
    <div class="legend" id="qlegend"></div>
    <svg id="qchart" viewBox="0 0 560 120" height="120"
         role="img" aria-label="q-error trend"></svg>
    <div class="axisnote">lower is better · 100 = exact estimate</div>
  </div>
</div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (n) => Number(n).toLocaleString("en-US");

async function getJson(path) {
  const r = await fetch(path, {cache: "no-store"});
  if (!r.ok) throw new Error(path + " -> " + r.status);
  return r.json();
}

// Polyline over a numeric series, normalized into the viewBox with a
// shared y-scale; returns an SVG path fragment.
function lineOf(values, w, h, lo, hi, color) {
  if (!values.length) return "";
  const span = hi - lo || 1;
  const step = values.length > 1 ? w / (values.length - 1) : 0;
  const pts = values.map((v, i) =>
      (i * step).toFixed(1) + "," +
      (h - 4 - ((v - lo) / span) * (h - 12)).toFixed(1)).join(" ");
  return '<polyline fill="none" stroke="' + color +
         '" stroke-width="2" stroke-linejoin="round" points="' + pts + '"/>';
}

function gridOf(w, h) {
  let g = "";
  for (let i = 1; i <= 2; i++) {
    const y = (h * i / 3).toFixed(1);
    g += '<line x1="0" y1="' + y + '" x2="' + w + '" y2="' + y +
         '" stroke="var(--grid)" stroke-width="1"/>';
  }
  g += '<line x1="0" y1="' + (h - 1) + '" x2="' + w + '" y2="' + (h - 1) +
       '" stroke="var(--baseline)" stroke-width="1"/>';
  return g;
}

async function series(name) {
  try {
    const s = await getJson("/timeseries?name=" + encodeURIComponent(name));
    return s.samples || [];
  } catch (e) { return []; }
}

function renderSpend(actual, cf) {
  const w = 560, h = 150;
  const all = actual.concat(cf);
  if (!all.length) { $("spendchart").innerHTML = gridOf(w, h); return; }
  const lo = Math.min(...all), hi = Math.max(...all);
  $("spendchart").innerHTML = gridOf(w, h) +
      lineOf(cf, w, h, lo, hi, "var(--series-2)") +
      lineOf(actual, w, h, lo, hi, "var(--series-1)");
}

function renderCauses(byCause) {
  const entries = Object.entries(byCause || {})
      .filter(([, v]) => v !== 0)
      .sort((a, b) => Math.abs(b[1]) - Math.abs(a[1]));
  if (!entries.length) {
    $("causes").innerHTML = '<div class="stale">no savings recorded yet</div>';
    return;
  }
  const max = Math.max(...entries.map(([, v]) => Math.abs(v)));
  $("causes").innerHTML = entries.map(([name, v]) => {
    const pct = Math.max(2, 100 * Math.abs(v) / max);
    const neg = v < 0 ? " neg" : "";
    return '<div class="barrow"><span class="name">' + name +
        '</span><span class="trough"><i class="' + neg.trim() +
        '" style="left:0;width:' + pct.toFixed(1) +
        '%"></i></span><span class="val">' + fmt(v) + "</span></div>";
  }).join("");
}

function renderStore(store) {
  const body = $("storetable").tBodies[0];
  const rows = (store.tables || []).map((t) => {
    const frac = t.covered_fraction == null ? null : t.covered_fraction;
    const probes = t.probes || 0;
    const rate = probes ? (100 * t.hits / probes).toFixed(0) + "%" : "–";
    const cov = frac == null ? '<span class="stale">n/a</span>' :
        '<div class="covbar"><i style="width:' +
        (100 * frac).toFixed(1) + '%"></i></div>';
    return "<tr><td>" + t.table + "</td><td>" + fmt(t.views) +
        '</td><td class="num">' + fmt(t.pooled_rows) + "</td><td>" + cov +
        '</td><td class="num">' + rate + "</td></tr>";
  });
  body.innerHTML = rows.join("") ||
      '<tr><td colspan="5" class="stale">store is empty</td></tr>';
}

function renderDurability(dur) {
  const val = $("t-dur"), delta = $("t-dur-d");
  if (!dur || !dur.enabled) {
    val.textContent = "off";
    delta.textContent = "no durability dir configured";
    delta.className = "delta";
    return;
  }
  val.textContent = fmt(dur.wal_bytes) + " B";
  const rec = dur.recovery || {};
  const parts = ["seq " + fmt(dur.next_seq ? dur.next_seq - 1 : 0),
                 "snap " + fmt(dur.snapshot_seq || 0)];
  if (rec.recovered) parts.push(fmt(rec.replayed_records) + " replayed");
  if (rec.wal_torn_tail) parts.push("torn tail dropped");
  if (dur.dead) parts.push("CRASHED (frozen)");
  delta.textContent = parts.join(" · ");
  delta.className = "delta" + (dur.dead ? " bad" : "");
}

function renderFederation(fed) {
  const val = $("t-fed"), delta = $("t-fed-d");
  if (!fed || !fed.federated) {
    val.textContent = "off";
    delta.textContent = "single market";
    delta.className = "delta";
    return;
  }
  const eps = fed.endpoints || [];
  val.textContent = fmt(eps.length) + " markets";
  const open = eps.reduce((n, e) =>
      n + Object.values(e.breakers || {}).filter((s) => s === "open").length,
      0);
  const parts = eps.map((e) => e.id + " " + fmt(e.transactions) + " txn");
  parts.push(fmt(fed.failovers || 0) + " failovers");
  if (open > 0) parts.push(fmt(open) + " breakers open");
  delta.textContent = parts.join(" · ");
  delta.className = "delta" + (open > 0 ? " bad" : "");
}

function renderWorkload(wj) {
  const val = $("t-wj"), delta = $("t-wj-d");
  if (!wj || wj.recording === false) {
    val.textContent = "off";
    delta.textContent = "no journal configured";
    return;
  }
  val.textContent = fmt(wj.records || 0) + " recorded";
  const tenants = Object.entries(wj.tenants || {});
  const parts = tenants.slice(0, 3).map(([t, s]) =>
      t + " " + fmt(s.records) + " @ " + Number(s.rate_qps).toFixed(1) +
      " qps");
  parts.push(((wj.bytes || 0) / 1024).toFixed(0) + " KiB · " +
      fmt(wj.segments || 0) + " segments · seq " + fmt(wj.next_seq || 0));
  delta.textContent = parts.join(" · ");
}

function renderLatency(lat, recorder) {
  const hists = (lat && lat.histograms) || {};
  const e2e = hists.payless_latency_e2e_micros;
  const val = $("t-lat"), delta = $("t-lat-d");
  if (!e2e || !e2e.count) {
    val.textContent = "–";
    delta.textContent = "no queries yet";
  } else {
    const ms = (us) => (us / 1000).toFixed(1);
    val.textContent = ms(e2e.p50) + " / " + ms(e2e.p99) + " ms";
    delta.textContent = "p999 " + ms(e2e.p999) + " ms · " +
        fmt(e2e.count) + " queries";
  }
  const stages = Object.entries(hists)
      .filter(([n, h]) => n.startsWith("payless_stage_") && h.count > 0)
      .map(([n, h]) => [n.replace("payless_stage_", "")
                         .replace("_micros", ""), h.p99])
      .sort((a, b) => b[1] - a[1]);
  if (!stages.length) {
    $("stagebars").innerHTML =
        '<div class="stale">no stage timings yet</div>';
  } else {
    const max = Math.max(...stages.map(([, v]) => v));
    $("stagebars").innerHTML = stages.map(([name, v]) => {
      const pct = Math.max(2, 100 * v / max);
      return '<div class="barrow"><span class="name">' + name +
          '</span><span class="trough"><i style="left:0;width:' +
          pct.toFixed(1) + '%"></i></span><span class="val">' + fmt(v) +
          "</span></div>";
    }).join("");
  }
  if (recorder) {
    const dropped = recorder.dropped || 0;
    $("fr").textContent = fmt((recorder.entries || []).length) +
        " entries in ring · " + fmt(recorder.recorded || 0) +
        " recorded" + (dropped ? " · " + fmt(dropped) + " dropped" : "");
  } else {
    $("fr").textContent = "off";
  }
}

async function renderQError(index) {
  const names = (index.series || [])
      .filter((n) => n.startsWith("payless_qerror_last_x100_")).slice(0, 3);
  const colors = ["var(--series-1)", "var(--series-2)", "var(--series-3)"];
  const data = await Promise.all(names.map(series));
  const w = 560, h = 120;
  const all = data.flat();
  let html = gridOf(w, h);
  if (all.length) {
    const lo = Math.min(...all), hi = Math.max(...all);
    data.forEach((d, i) => { html += lineOf(d, w, h, lo, hi, colors[i]); });
  }
  $("qchart").innerHTML = html;
  $("qlegend").innerHTML = names.map((n, i) =>
      '<span><span class="swatch" style="background:' + colors[i] +
      '"></span>' + n.replace("payless_qerror_last_x100_", "") +
      "</span>").join("");
}

async function refresh() {
  try {
    const [metrics, savings, store, index] = await Promise.all([
      getJson("/metrics.json"), getJson("/savings"),
      getJson("/store"), getJson("/timeseries"),
    ]);
    const total = savings.total || {};
    $("t-actual").textContent = fmt(total.actual || 0);
    $("t-cf").textContent = fmt(total.counterfactual || 0);
    $("t-save").textContent = fmt(total.savings || 0);
    const cf = total.counterfactual || 0;
    const pct = cf ? (100 * (total.savings || 0) / cf).toFixed(1) : null;
    const sd = $("t-save-d");
    sd.textContent = pct == null ? "–" : pct + "% of counterfactual";
    sd.className = "delta" +
        ((total.savings || 0) > 0 ? " good" :
         (total.savings || 0) < 0 ? " bad" : "");
    const counters = metrics.counters || {};
    $("t-queries").textContent = fmt(counters.payless_queries_total || 0);
    $("t-failq").textContent =
        fmt(counters.payless_query_failures_total || 0) + " failures";
    $("period").textContent =
        ((index.period_micros || 0) / 1e6).toFixed(1);
    renderCauses(total.by_cause);
    renderStore(store);
    renderDurability(store.durability);
    // /markets only exists when RegisterIntrospection ran on a federated
    // client; keep the rest of the dashboard live when it is absent.
    try { renderFederation(await getJson("/markets")); }
    catch (e) { renderFederation(null); }
    // /workload answers {"recording":false} without a journal; treat a
    // missing route (older server) the same way.
    try { renderWorkload(await getJson("/workload")); }
    catch (e) { renderWorkload(null); }
    // Same for /latency and /flightrecorder (RegisterIntrospection wires
    // both; the recorder may additionally be disabled by config).
    try {
      const lat = await getJson("/latency");
      let rec = null;
      try { rec = await getJson("/flightrecorder"); } catch (e) {}
      renderLatency(lat, rec);
    } catch (e) { renderLatency(null, null); }
    const [actual, cfs] = await Promise.all([
      series("payless_transactions_total"),
      series("payless_counterfactual_transactions_total"),
    ]);
    renderSpend(actual, cfs);
    await renderQError(index);
    $("stale").textContent = "";
  } catch (e) {
    $("stale").textContent = "(stale: " + e.message + ")";
  }
}

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
)HTML";
}

}  // namespace payless::obs
