#include "exec/payless.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "obs/explain.h"
#include "sql/parser.h"

namespace payless::exec {

namespace {

/// EXPLAIN's result relation: one string column, one row per text line —
/// the shape every SQL tool expects from an explain statement.
storage::Table PlanTextTable(const std::string& text) {
  storage::Table table(storage::Schema(
      {storage::SchemaColumn{"", "QUERY PLAN", ValueType::kString}}));
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) table.Append({Value(line)});
  return table;
}

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Compact per-query flight-recorder entry: status, latency, stage
/// decomposition and a span summary. Spans are truncated to the first
/// kMaxFlightSpans (with the true total alongside) so the entry fits the
/// recorder's fixed slot size even for wide bind joins.
std::string FlightEntryJson(const std::string& tenant, uint64_t query_id,
                            const QueryReport& report) {
  constexpr size_t kMaxFlightSpans = 12;
  std::ostringstream os;
  os << "{\"kind\":\"query\",\"tenant\":\"" << tenant
     << "\",\"query_id\":" << query_id << ",\"status\":\""
     << Status::CodeName(report.error.code())
     << "\",\"latency_us\":" << report.latency_us
     << ",\"transactions\":" << report.transactions_spent << ",\"stages\":{";
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    if (i > 0) os << ",";
    os << "\"" << obs::QueryStageName(i) << "\":" << report.stage_micros[i];
  }
  os << "},\"spans\":[";
  const size_t shown = std::min(report.trace.size(), kMaxFlightSpans);
  for (size_t i = 0; i < shown; ++i) {
    const obs::SpanRecord& span = report.trace[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << span.name << "\",\"dur_us\":"
       << span.duration_micros << "}";
  }
  os << "],\"spans_total\":" << report.trace.size() << "}";
  return os.str();
}

}  // namespace

PayLess::PayLess(const catalog::Catalog* catalog,
                 const market::DataMarket* market, PayLessConfig config)
    : catalog_(catalog),
      config_(config),
      owned_obs_(config.observability == nullptr
                     ? std::make_unique<obs::Observability>()
                     : nullptr),
      obs_(config.observability != nullptr ? config.observability
                                           : owned_obs_.get()),
      accuracy_(&obs_->metrics, config.qerror_invalidation_threshold),
      connector_(market),
      stats_(config.stats_kind) {
  // Resolve metric handles once; the per-query path then records through
  // stable pointers (relaxed atomics, no registry lock).
  obs::MetricsRegistry& m = obs_->metrics;
  metric_.queries = m.GetCounter("payless_queries_total");
  metric_.query_failures = m.GetCounter("payless_query_failures_total");
  metric_.budget_rejections = m.GetCounter("payless_budget_rejections_total");
  metric_.budget_warnings = m.GetCounter("payless_budget_warnings_total");
  metric_.transactions = m.GetCounter("payless_transactions_total");
  metric_.market_calls = m.GetCounter("payless_market_calls_total");
  metric_.rows_from_market = m.GetCounter("payless_rows_from_market_total");
  metric_.rows_from_cache = m.GetCounter("payless_rows_from_cache_total");
  metric_.plan_cache_hits = m.GetCounter("payless_plan_cache_hits_total");
  metric_.plan_cache_misses = m.GetCounter("payless_plan_cache_misses_total");
  metric_.query_latency_micros = m.GetHistogram(
      "payless_query_latency_micros",
      {100, 250, 500, 1'000, 2'500, 5'000, 10'000, 25'000, 50'000, 100'000,
       250'000, 1'000'000, 5'000'000});
  // HDR latency: exact-decodable log-scale buckets for the end-to-end tail
  // and its per-stage decomposition. Recorded at the span boundaries but
  // independent of tracing, so tracing-off deployments still see the tail.
  metric_.latency_e2e = m.GetLatencyHistogram("payless_latency_e2e_micros");
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    metric_.stage[i] = m.GetLatencyHistogram(
        std::string("payless_stage_") + obs::QueryStageName(i) + "_micros");
  }
  // Store probe/eviction counters are wired unconditionally — coverage
  // telemetry must not depend on whether the introspection endpoint is up.
  metric_.store_hits = m.GetCounter("payless_store_hits_total");
  metric_.store_misses = m.GetCounter("payless_store_misses_total");
  metric_.store_evictions = m.GetCounter("payless_store_evictions_total");
  store_.BindMetrics(metric_.store_hits, metric_.store_misses,
                     metric_.store_evictions);
  metric_.counterfactual =
      m.GetCounter("payless_counterfactual_transactions_total");
  metric_.savings = m.GetGauge("payless_savings_transactions");
  for (int i = 0; i < obs::kNumSavingsCauses; ++i) {
    metric_.savings_by_cause[i] = m.GetGauge(
        std::string("payless_savings_cause_") +
        obs::SavingsCauseName(static_cast<obs::SavingsCause>(i)));
  }
  if (config.enable_savings_accounting) {
    savings_accountant_ = std::make_unique<obs::SavingsAccountant>(
        catalog_, &stats_, config.optimizer);
  }
  connector_.SetRetryPolicy(config.retry);
  // Scheduler/queue instrumentation and the coalescing-opportunity meter.
  // Gauges and counters are shared across connectors (they are atomics, and
  // the questions they answer — "how deep is the queue", "how many
  // transactions would a dedup layer have saved" — are per-client, not
  // per-endpoint).
  market::SchedulerHooks sched_hooks;
  sched_hooks.queue_depth = m.GetGauge("payless_sched_queue_depth");
  sched_hooks.in_flight = m.GetGauge("payless_sched_in_flight");
  sched_hooks.timer_heap = m.GetGauge("payless_sched_timer_heap");
  sched_hooks.admission_wait =
      m.GetLatencyHistogram("payless_sched_admission_wait_micros");
  sched_hooks.coalescable_calls =
      m.GetCounter("payless_coalescable_calls_total");
  sched_hooks.coalescable_transactions =
      m.GetCounter("payless_coalescable_transactions_total");
  if (config.enable_flight_recorder) {
    sched_hooks.recorder = &obs_->flight_recorder;
  }
  connector_.SetSchedulerHooks(sched_hooks);
  // The base connector's RTT/backoff/SLO hooks (in federated mode it is
  // only the prefetch fallback, but its latency is still worth seeing).
  latency_slos_.push_back(
      std::make_unique<obs::LatencySlo>(config.latency_slo));
  {
    market::MarketConnector::LatencyHooks lat;
    lat.rtt = m.GetLatencyHistogram("payless_market_rtt_micros");
    lat.backoff = m.GetLatencyHistogram("payless_retry_backoff_micros");
    lat.slo = latency_slos_.back().get();
    connector_.BindLatency(lat);
  }
  if (config.enable_flight_recorder &&
      !config.flight_recorder_dump_path.empty()) {
    // Arm the crash path: a durability-injected hard crash dumps the ring
    // to this path before the process dies.
    obs_->flight_recorder.ArmCrashDump(config.flight_recorder_dump_path);
  }
  if (config_.federation != nullptr) {
    // One connector per endpoint, each billing its own meter under its own
    // market label — the ledger/meter reconciliation invariant then holds
    // per endpoint, not just in aggregate.
    router_ = std::make_unique<federation::EndpointRouter>(config_.federation);
    router_->SetRetryPolicy(config.retry);
    for (size_t i = 0; i < router_->num_endpoints(); ++i) {
      router_->connector(i)->SetSchedulerHooks(sched_hooks);
      latency_slos_.push_back(
          std::make_unique<obs::LatencySlo>(config.latency_slo));
      // Per-endpoint RTT + SLO: /markets renders each endpoint's latency
      // health (tail + burn rate) next to its breaker states.
      router_->BindLatency(
          i,
          m.GetLatencyHistogram("payless_market_rtt_micros_" +
                                router_->endpoint_id(i)),
          latency_slos_.back().get());
    }
    if (savings_accountant_ != nullptr) {
      // The counterfactual becomes "the cheapest SINGLE market" — priced
      // per endpoint against that endpoint's menu; the federation's edge
      // over the best of them is the federation_routing savings cause.
      std::vector<std::pair<std::string, const catalog::Catalog*>> endpoints;
      for (size_t i = 0; i < config_.federation->num_endpoints(); ++i) {
        const federation::MarketEndpoint& endpoint =
            *config_.federation->endpoint(i);
        endpoints.emplace_back(endpoint.id(), &endpoint.catalog());
      }
      savings_accountant_->SetFederation(std::move(endpoints));
    }
  }
  // Every catalog table gets a learning estimator seeded from the published
  // basic statistics (the uniform cold start of §4.3).
  for (const std::string& name : catalog_->TableNames()) {
    const catalog::TableDef* def = catalog_->FindTable(name);
    stats_.RegisterTable(*def);
    // Resolve the accuracy tracker's per-table metric handles now, so no
    // steady-state Record ever takes the registry's name-map mutex.
    accuracy_.PrepareTable(name);
    if (def->is_local) {
      const Status st = local_db_.CreateTable(*def);
      assert(st.ok());
      (void)st;
    }
  }
  // Persistence + recovery come up BEFORE the listener serves live calls:
  // the snapshot restores store/stats/plan-cache state, the log tail
  // replays through AbsorbHarvest (the same body live calls run), and the
  // drift epoch / store week are fast-forwarded so plan-cache keys minted
  // after the restart line up with the recovered templates.
  if (!config_.durability.dir.empty()) {
    durability_ = std::make_unique<durability::DurabilityManager>(
        config_.durability, catalog_, &store_, &stats_, &plan_cache_,
        &obs_->metrics);
    durability_->SetStateSuppliers(
        [this] { return accuracy_.drift_epoch(); },
        [this] { return current_week(); });
    const Status recovered = durability_->Recover(
        [this](const catalog::TableDef& def, const Box& region,
               std::vector<Row> rows, int64_t num_records, int64_t epoch) {
          AbsorbHarvest(def, region, std::move(rows), num_records, epoch);
        });
    assert(recovered.ok());
    (void)recovered;
    const durability::RecoveryInfo& info = durability_->recovery();
    if (info.recovered) {
      accuracy_.RestoreDriftEpoch(info.restored_drift_epoch);
      current_week_.store(info.restored_week, std::memory_order_relaxed);
    }
  }
  // Steps 5.3 / 5.4 of Fig. 3: every successful call feeds the semantic
  // store and the statistics (AbsorbHarvest). With durability on, the
  // harvest is logged durable FIRST, then applied — the manager serializes
  // the whole pipeline so the log is a faithful replay script.
  const market::MarketConnector::Listener harvest_listener =
      [this](const market::RestCall& call, const market::CallResult& result) {
        const catalog::TableDef* def = catalog_->FindTable(call.table);
        assert(def != nullptr);
        const Box region = market::CallRegion(*def, call);
        if (durability_ != nullptr) {
          durability_->LogAndApply(
              *def, region, result, current_week(),
              [this](const catalog::TableDef& d, const Box& r,
                     std::vector<Row> rows, int64_t num_records,
                     int64_t epoch) {
                AbsorbHarvest(d, r, std::move(rows), num_records, epoch);
              });
        } else {
          AbsorbHarvest(*def, region, result.rows, result.num_records,
                        current_week());
        }
      };
  connector_.AddListener(harvest_listener);
  // Federated mode: the same learning loop closes behind EVERY endpoint —
  // a slab is a slab no matter which market sold it.
  if (router_ != nullptr) router_->AddListener(harvest_listener);
  if (config_.placement_capacity_bytes > 0 ||
      config_.placement_tick_interval_micros > 0) {
    federation::PlacementOptions placement_options;
    placement_options.capacity_bytes = config_.placement_capacity_bytes;
    placement_options.tick_interval_micros =
        config_.placement_tick_interval_micros;
    placement_ = std::make_unique<federation::PlacementPolicy>(
        placement_options, &store_, catalog_, router_.get(),
        durability_.get());
    placement_->Start();
  }
}

void PayLess::AbsorbHarvest(const catalog::TableDef& def, const Box& region,
                            std::vector<Row> rows, int64_t num_records,
                            int64_t epoch) {
  if (config_.enable_accuracy_tracking) {
    // The estimate is taken BEFORE Feedback (afterwards the histogram has
    // already absorbed the observation and the comparison would flatter
    // it). Replay recomputes the identical estimate, so the drift epoch
    // reconverges deterministically on serial histories.
    const double estimated = stats_.EstimateRows(def.name, region);
    accuracy_.Record(def.name, def.dataset, estimated,
                     static_cast<double>(num_records));
  }
  store_.Store(def, region, std::move(rows), epoch);
  stats_.Feedback(def.name, region, num_records);
  if (config_.enable_accuracy_tracking) {
    const stats::EstimatorInfo info = stats_.Info(def.name);
    accuracy_.RecordStatsQuality(def.name, static_cast<int64_t>(info.buckets),
                                 static_cast<int64_t>(info.feedbacks),
                                 info.total_count);
  }
}

int64_t PayLess::MinEpoch() const {
  switch (config_.consistency) {
    case ConsistencyLevel::kWeak:
      return std::numeric_limits<int64_t>::min();
    case ConsistencyLevel::kXWeek:
      return current_week() - config_.consistency_weeks;
    case ConsistencyLevel::kFull:
      return std::numeric_limits<int64_t>::max();  // nothing is reusable
  }
  return std::numeric_limits<int64_t>::min();
}

Result<QueryReport> PayLess::QueryWithReport(const std::string& sql,
                                             const std::vector<Value>& params) {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  metric_.queries->Add(1);
  // Virtual arrival timestamp, captured before admission so the journal's
  // clock reflects when the query entered the system, not when its record
  // was appended (appends happen after completion, in completion order).
  const int64_t arrival_us = config_.workload_journal != nullptr
                                 ? config_.workload_journal->NowMicros()
                                 : 0;

  // Admission gate 1: a tenant already over its hard cap or window rate
  // fails fast — before parsing, before the optimizer burns CPU, before any
  // market call. The soft threshold is not noted here (gate 2 owns it).
  obs::Admission admission =
      obs_->governor.Admit(config_.tenant, 0, /*now_micros=*/-1,
                           /*note_soft_warning=*/false);
  Result<QueryReport> result =
      admission.status.ok()
          ? QueryWithReportImpl(sql, params, query_id)
          : Result<QueryReport>(admission.status);
  if (!admission.status.ok()) {
    metric_.budget_rejections->Add(1);
    if (config_.enable_flight_recorder) {
      std::ostringstream os;
      os << "{\"kind\":\"budget_rejection\",\"tenant\":\"" << config_.tenant
         << "\",\"query_id\":" << query_id << ",\"gate\":1}";
      obs_->flight_recorder.Record(os.str());
      if (!config_.flight_recorder_dump_path.empty()) {
        obs_->flight_recorder.DumpTo(config_.flight_recorder_dump_path);
      }
    }
  }

  const int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  metric_.query_latency_micros->Observe(wall_us);
  if (!result.ok() || !result.value().error.ok()) {
    metric_.query_failures->Add(1);
  }

  // Journal every ADMITTED query (gate-1 pass): delivered results, parse
  // and optimize errors, gate-2 budget rejections and mid-flight failures
  // all replay deterministically, so all of them belong to the recorded
  // workload. A journal write failure never fails the query — recording is
  // observability, not the billing path.
  if (config_.workload_journal != nullptr && admission.status.ok()) {
    obs::WorkloadRecord record;
    record.tenant = config_.tenant;
    record.sql = sql;
    record.params = params;
    record.arrival_us = arrival_us;
    if (result.ok()) {
      record.status_code = static_cast<int32_t>(result->error.code());
      record.transactions = result->transactions_spent;
      record.result_rows = static_cast<int64_t>(result->result.num_rows());
      record.latency_us = result->latency_us;
    } else {
      record.status_code = static_cast<int32_t>(result.status().code());
      record.latency_us = wall_us;
    }
    const Status journaled =
        config_.workload_journal->Append(std::move(record));
    (void)journaled;
  }
  return result;
}

Result<QueryReport> PayLess::QueryWithReportImpl(
    const std::string& sql, const std::vector<Value>& params,
    uint64_t query_id) {
  const auto impl_start = std::chrono::steady_clock::now();
  // Wall-stage decomposition of this query; lives on this frame and is
  // threaded through the executor (and from there the scheduler/connector)
  // via CallObs. Works with tracing off — the recording points are the
  // same code boundaries the spans mark, not the spans themselves.
  obs::QueryStageAccumulator stages;
  // The trace lives on this frame; on early (pre-execution) error returns
  // it is simply dropped — those queries have no report to carry it.
  obs::Trace trace_storage;
  obs::Trace* trace = config_.enable_tracing ? &trace_storage : nullptr;
  uint64_t root = 0;
  if (trace != nullptr) {
    root = trace->StartSpan("query");
    trace->AddAttr(root, "tenant", config_.tenant);
    trace->AddAttr(root, "query_id", static_cast<int64_t>(query_id));
  }

  Result<sql::SelectStmt> stmt = [&] {
    obs::ScopedSpan span(trace, "parse", root);
    return sql::Parse(sql);
  }();
  PAYLESS_RETURN_IF_ERROR(stmt.status());
  Result<sql::BoundQuery> bound = [&] {
    obs::ScopedSpan span(trace, "bind", root);
    return sql::Bind(*stmt, *catalog_, params);
  }();
  PAYLESS_RETURN_IF_ERROR(bound.status());

  core::OptimizerOptions opt_options = config_.optimizer;
  opt_options.min_epoch = MinEpoch();
  if (config_.consistency == ConsistencyLevel::kFull) {
    opt_options.use_sqr = false;  // §4.3: full consistency disables SQR
  }
  // Federated: snapshot the buy-site menu (terms + breaker liveness) once,
  // before optimization, so every access of this query is priced against
  // one consistent view of the federation.
  core::FederationPricing federation_pricing;
  if (router_ != nullptr) {
    federation_pricing = router_->BuildPricing();
    opt_options.federation = &federation_pricing;
  }

  // `EXPLAIN <query>`: optimize-only, exactly like the Explain() API —
  // nothing is billed, nothing is cached, and the result relation is the
  // rendered plan. (EXPLAIN ANALYZE falls through: it executes for real.)
  if (bound->explain == sql::ExplainMode::kPlain) {
    const core::Optimizer optimizer(catalog_, &stats_, &store_, opt_options);
    Result<core::OptimizeResult> optimized = optimizer.Optimize(*bound);
    PAYLESS_RETURN_IF_ERROR(optimized.status());
    QueryReport report;
    report.plan = std::move(optimized->plan);
    report.counters = optimized->counters;
    report.query_id = query_id;
    obs::ExplainContext context;
    context.counters = &report.counters;
    context.stats = &stats_;
    report.plan_text = obs::RenderExplain(report.plan, *bound, context);
    report.result = PlanTextTable(report.plan_text);
    return report;
  }
  // EXPLAIN ANALYZE joins the actuals from the trace spans, so the trace
  // must exist even when tracing is off; parse/bind spans were skipped in
  // that case, which the span join does not care about.
  const bool analyze = bound->explain == sql::ExplainMode::kAnalyze;
  if (analyze && trace == nullptr) {
    trace = &trace_storage;
    root = trace->StartSpan("query");
    trace->AddAttr(root, "tenant", config_.tenant);
    trace->AddAttr(root, "query_id", static_cast<int64_t>(query_id));
  }

  // Plan-template cache: repeated identical parameterized queries reuse
  // the optimizer's plan until the accuracy tracker observes estimate
  // drift beyond the q-error threshold (the drift epoch is part of the
  // key, so staleness means a plain miss and a re-optimization against
  // the refined statistics).
  QueryReport report;
  bool cache_hit = false;
  obs::Counterfactual cf;
  int64_t probe_micros = 0;
  {
    obs::ScopedSpan plan_span(trace, "plan", root);
    std::string cache_key;
    const uint64_t drift_epoch = accuracy_.drift_epoch();
    std::shared_ptr<const core::CachedPlan> cached;
    if (config_.enable_plan_cache) {
      const auto probe_start = std::chrono::steady_clock::now();
      cache_key = core::PlanCache::MakeKey(core::NormalizeSqlTemplate(sql),
                                           params, drift_epoch,
                                           opt_options.min_epoch);
      cached = plan_cache_.Lookup(cache_key);
      probe_micros = MicrosSince(probe_start);
      if (cached != nullptr) {
        report.plan = cached->plan;
        report.counters = cached->counters;
        // The counterfactual rides in the template: a hit reports exactly
        // the price the miss that created the template computed.
        cf.total = cached->cf_total;
        cf.by_dataset = cached->cf_by_dataset;
        cf.signature = cached->cf_signature;
        cache_hit = true;
      }
    }
    if (cache_hit && savings_accountant_ != nullptr && !cf.ok()) {
      cf = savings_accountant_->Price(*bound);  // template predates accounting
    }
    if (!cache_hit) {
      const core::Optimizer optimizer(catalog_, &stats_, &store_, opt_options);
      Result<core::OptimizeResult> optimized = optimizer.Optimize(*bound);
      PAYLESS_RETURN_IF_ERROR(optimized.status());
      report.plan = std::move(optimized->plan);
      report.counters = optimized->counters;
      if (savings_accountant_ != nullptr) {
        cf = savings_accountant_->Price(*bound);
      }
      if (config_.enable_plan_cache &&
          accuracy_.drift_epoch() == drift_epoch) {
        // Only cache when no concurrent drift tick raced the optimization,
        // so every cached plan matches the epoch in its key exactly.
        plan_cache_.Insert(cache_key,
                           core::CachedPlan{report.plan, report.counters,
                                            cf.total, cf.by_dataset,
                                            cf.signature});
      }
    }
    plan_span.AddAttr("cache_hit", static_cast<int64_t>(cache_hit ? 1 : 0));
    plan_span.AddAttr("est_transactions", report.plan.est_cost);
  }
  // Everything since entry minus the probe is parse + bind + optimize —
  // the plan-side half of the wall-stage partition.
  stages.Add(obs::kStagePlanCacheProbe, probe_micros);
  stages.Add(obs::kStageParsePlan, MicrosSince(impl_start) - probe_micros);
  report.counters.plan_cache_hits = cache_hit ? 1 : 0;
  report.counters.plan_cache_misses =
      (config_.enable_plan_cache && !cache_hit) ? 1 : 0;
  metric_.plan_cache_hits->Add(
      static_cast<int64_t>(report.counters.plan_cache_hits));
  metric_.plan_cache_misses->Add(
      static_cast<int64_t>(report.counters.plan_cache_misses));

  // Admission gate 2, now with the plan's estimated price: a predicted-
  // over-budget plan fails fast before spending anything. Soft-threshold
  // crossings are noted here, once per admitted query.
  obs::Admission admission =
      obs_->governor.Admit(config_.tenant, report.plan.est_cost);
  if (!admission.status.ok()) {
    metric_.budget_rejections->Add(1);
    if (config_.enable_flight_recorder) {
      // A budget rejection is exactly the moment an operator wants the
      // recent history: record it and dump the ring when a path is set.
      std::ostringstream os;
      os << "{\"kind\":\"budget_rejection\",\"tenant\":\"" << config_.tenant
         << "\",\"query_id\":" << query_id
         << ",\"est_transactions\":" << report.plan.est_cost << "}";
      obs_->flight_recorder.Record(os.str());
      if (!config_.flight_recorder_dump_path.empty()) {
        obs_->flight_recorder.DumpTo(config_.flight_recorder_dump_path);
      }
    }
    return admission.status;
  }
  report.budget_warning = admission.soft_warning;
  if (admission.soft_warning) metric_.budget_warnings->Add(1);

  ExecConfig exec_config;
  exec_config.use_sqr = opt_options.use_sqr;
  exec_config.min_epoch = opt_options.min_epoch;
  exec_config.remainder = opt_options.remainder;
  exec_config.max_parallel_calls = config_.max_parallel_calls;
  exec_config.use_call_scheduler = config_.enable_call_scheduler;
  if (config_.query_deadline_micros > 0) {
    exec_config.deadline =
        market::Clock::now() +
        std::chrono::microseconds(config_.query_deadline_micros);
  }
  exec_config.obs.tenant = config_.tenant;
  exec_config.obs.query_id = query_id;
  exec_config.obs.ledger = &obs_->ledger;
  exec_config.obs.trace = trace;
  exec_config.obs.stages = &stages;
  uint64_t exec_span = 0;
  if (trace != nullptr) exec_span = trace->StartSpan("execute", root);
  exec_config.obs.parent_span = exec_span;

  ExecutionEngine engine(catalog_, &local_db_, &connector_, &store_, &stats_,
                         common::ThreadPool::Shared());
  engine.SetRouter(router_.get());
  Result<storage::Table> result =
      engine.Execute(*bound, report.plan, exec_config, &report.exec);
  // Counted from this query's own calls, not a meter delta, so the number is
  // exact even when other client threads are spending concurrently. Filled
  // before the error check: on a mid-flight failure it is the spend-so-far.
  report.transactions_spent = report.exec.transactions;

  // Everything a delivered OR failed-mid-flight report carries: spend
  // attribution, window feed, metrics, and the closed trace.
  const auto finish_report = [&] {
    report.query_id = query_id;
    report.latency_us = MicrosSince(impl_start);
    for (int i = 0; i < obs::kNumQueryStages; ++i) {
      report.stage_micros[i] = stages.micros(i);
    }
    metric_.latency_e2e->Record(report.latency_us);
    for (int i = 0; i < obs::kNumQueryStages; ++i) {
      if (report.stage_micros[i] > 0) {
        metric_.stage[i]->Record(report.stage_micros[i]);
      }
    }
    obs_->governor.RecordSpend(config_.tenant, report.transactions_spent);
    report.transactions_by_dataset =
        obs_->ledger.DatasetBreakdown(config_.tenant, query_id);
    metric_.transactions->Add(report.transactions_spent);
    metric_.market_calls->Add(report.exec.calls);
    metric_.rows_from_market->Add(report.exec.rows_from_market);
    metric_.rows_from_cache->Add(report.exec.rows_from_cache);
    if (savings_accountant_ != nullptr && cf.ok()) {
      // Reconcile the counterfactual against the realized per-dataset
      // spend — runs for failed-mid-flight queries too, where the spend
      // so far (and its waste) is exactly what should be accounted.
      const obs::QuerySavings s = savings_accountant_->RecordQuery(
          cf, report.plan, *bound, cache_hit,
          obs_->ledger.QueryCells(config_.tenant, query_id), config_.tenant,
          &obs_->savings);
      report.counterfactual_transactions = s.counterfactual;
      report.savings_transactions = s.savings;
      metric_.counterfactual->Add(s.counterfactual);
      metric_.savings->Add(s.savings);
      for (int i = 0; i < obs::kNumSavingsCauses; ++i) {
        if (s.by_cause[i] != 0) {
          metric_.savings_by_cause[i]->Add(s.by_cause[i]);
        }
      }
    }
    if (trace != nullptr) {
      trace->AddAttr(exec_span, "transactions", report.transactions_spent);
      trace->AddAttr(exec_span, "calls", report.exec.calls);
      trace->AddAttr(exec_span, "calls_cancelled",
                     report.exec.calls_cancelled);
      trace->EndSpan(exec_span);
      trace->AddAttr(root, "status",
                     std::string(Status::CodeName(report.error.code())));
      trace->EndSpan(root);
      report.trace = trace_storage.TakeSpans();
      if (obs_->trace_sink != nullptr) {
        obs_->trace_sink->Emit(config_.tenant, query_id, report.trace);
      }
    }
    if (config_.enable_flight_recorder) {
      // Always-on last-N ring: one compact entry per completed query,
      // after the trace closed so the span summary is final. A failed
      // query additionally dumps the whole ring when a path is set.
      obs_->flight_recorder.Record(
          FlightEntryJson(config_.tenant, query_id, report));
      if (!report.error.ok() && !config_.flight_recorder_dump_path.empty()) {
        obs_->flight_recorder.DumpTo(config_.flight_recorder_dump_path);
      }
    }
  };

  // EXPLAIN ANALYZE: join the measured per-access actuals (rows, calls,
  // transactions, retries, waste) from the trace back onto the plan and
  // make the rendering the query's result. Runs after finish_report so
  // report.trace is final; also on mid-flight errors — a partial ANALYZE
  // that shows where the money went before the failure is exactly what an
  // operator wants.
  const auto attach_analyze = [&] {
    if (!analyze) return;
    const std::vector<obs::AccessActuals> actuals =
        obs::JoinAccessActuals(report.trace, report.plan.accesses.size());
    obs::ExplainContext context;
    context.counters = &report.counters;
    context.stats = &stats_;
    context.actuals = &actuals;
    context.transactions_spent = report.transactions_spent;
    context.counterfactual_transactions = report.counterfactual_transactions;
    context.savings_transactions = report.savings_transactions;
    context.latency_us = report.latency_us;
    context.stage_micros = report.stage_micros;
    report.plan_text = obs::RenderExplain(report.plan, *bound, context);
    report.result = PlanTextTable(report.plan_text);
  };

  if (!result.ok()) {
    const Status::Code code = result.status().code();
    if (IsRetryable(code) || code == Status::Code::kDeadlineExceeded) {
      // Market infrastructure failure after money may already have flowed:
      // hand back the report so the caller sees the error AND the spend.
      // Everything delivered before the failure is in the semantic store,
      // so re-issuing the query only pays for what is still missing.
      report.error = result.status();
      finish_report();
      attach_analyze();
      return report;
    }
    return result.status();
  }

  report.result = std::move(*result);
  finish_report();
  attach_analyze();
  return report;
}

Result<storage::Table> PayLess::Query(const std::string& sql,
                                      const std::vector<Value>& params) {
  Result<QueryReport> report = QueryWithReport(sql, params);
  PAYLESS_RETURN_IF_ERROR(report.status());
  PAYLESS_RETURN_IF_ERROR(report->error);
  return std::move(report->result);
}

Result<QueryReport> PayLess::Explain(const std::string& sql,
                                     const std::vector<Value>& params) {
  Result<sql::SelectStmt> stmt = sql::Parse(sql);
  PAYLESS_RETURN_IF_ERROR(stmt.status());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, *catalog_, params);
  PAYLESS_RETURN_IF_ERROR(bound.status());
  core::OptimizerOptions opt_options = config_.optimizer;
  opt_options.min_epoch = MinEpoch();
  if (config_.consistency == ConsistencyLevel::kFull) {
    opt_options.use_sqr = false;
  }
  core::FederationPricing federation_pricing;
  if (router_ != nullptr) {
    federation_pricing = router_->BuildPricing();
    opt_options.federation = &federation_pricing;
  }
  const core::Optimizer optimizer(catalog_, &stats_, &store_, opt_options);
  Result<core::OptimizeResult> optimized = optimizer.Optimize(*bound);
  PAYLESS_RETURN_IF_ERROR(optimized.status());
  QueryReport report;
  report.plan = std::move(optimized->plan);
  report.counters = optimized->counters;
  report.transactions_spent = 0;  // nothing executed
  obs::ExplainContext context;
  context.counters = &report.counters;
  context.stats = &stats_;
  report.plan_text = obs::RenderExplain(report.plan, *bound, context);
  report.result = PlanTextTable(report.plan_text);
  return report;
}

Result<std::string> PayLess::ExplainText(const std::string& sql,
                                         const std::vector<Value>& params) {
  Result<QueryReport> report = Explain(sql, params);
  PAYLESS_RETURN_IF_ERROR(report.status());
  return std::move(report->plan_text);
}

Result<BatchReport> PayLess::QueryBatch(const std::vector<BatchQuery>& batch) {
  BatchReport report;
  // Federated spend accrues across per-endpoint meters, not connector_'s.
  const auto total_transactions = [&] {
    return router_ != nullptr ? router_->TotalMeteredTransactions()
                              : connector_.meter().total_transactions();
  };
  const int64_t before = total_transactions();

  // ---- Phase 1: collect the market footprints of every query.
  struct Footprint {
    const catalog::TableDef* def;
    Box region;
  };
  std::vector<Footprint> footprints;
  std::vector<sql::BoundQuery> bound_queries;
  for (const BatchQuery& q : batch) {
    Result<sql::SelectStmt> stmt = sql::Parse(q.sql);
    PAYLESS_RETURN_IF_ERROR(stmt.status());
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, *catalog_, q.params);
    PAYLESS_RETURN_IF_ERROR(bound.status());
    for (const sql::BoundRelation& rel : bound->relations) {
      if (!rel.is_market() || rel.always_empty) continue;
      const Box region = rel.QueryRegion();
      if (!region.empty()) footprints.push_back(Footprint{rel.def, region});
    }
    bound_queries.push_back(std::move(*bound));
  }

  // ---- Phase 2: per table, greedily merge regions while a merged hull's
  // estimated remainder is cheaper than the individual remainders, then
  // prefetch groups that merged at least two query footprints.
  const bool sqr = config_.optimizer.use_sqr &&
                   config_.consistency != ConsistencyLevel::kFull;
  if (sqr) {
    std::map<const catalog::TableDef*, std::vector<Box>> by_table;
    for (Footprint& fp : footprints) {
      by_table[fp.def].push_back(std::move(fp.region));
    }
    for (auto& [def, regions] : by_table) {
      const catalog::DatasetDef* dataset = catalog_->DatasetOf(*def);
      // Prefetch buys at the cheapest live endpoint (shared spend should
      // flow to the best menu, same as the optimizer's buy-site choice).
      market::MarketConnector* prefetch_connector = &connector_;
      if (router_ != nullptr) {
        prefetch_connector = router_->ConnectorFor(
            router_->NextCheapestLive(def->dataset, {}));
      }
      semstore::RemainderOptions rem_options = config_.optimizer.remainder;
      rem_options.tuples_per_transaction = dataset->tuples_per_transaction;
      const auto remainder_cost = [&](const Box& region) {
        const semstore::RemainderResult rem = semstore::GenerateRemainder(
            region, store_.CoveredRegions(def->name, MinEpoch()),
            core::Optimizer::DimSpecsFor(*def),
            [&](const Box& box) {
              return stats_.EstimateRows(def->name, box);
            },
            rem_options);
        return rem.fully_covered ? int64_t{0} : rem.estimated_transactions;
      };
      const auto hull_of = [](const Box& a, const Box& b) {
        Box hull = a;
        for (size_t d = 0; d < hull.num_dims(); ++d) {
          hull.dim(d) = Interval(std::min(a.dim(d).lo, b.dim(d).lo),
                                 std::max(a.dim(d).hi, b.dim(d).hi));
        }
        return hull;
      };

      // Track how many original footprints each group absorbs.
      std::vector<size_t> members(regions.size(), 1);
      bool merged = true;
      while (merged && regions.size() > 1) {
        merged = false;
        for (size_t i = 0; i < regions.size() && !merged; ++i) {
          for (size_t j = i + 1; j < regions.size() && !merged; ++j) {
            const Box hull = hull_of(regions[i], regions[j]);
            if (remainder_cost(hull) <
                remainder_cost(regions[i]) + remainder_cost(regions[j])) {
              regions[i] = hull;
              members[i] += members[j];
              regions.erase(regions.begin() + static_cast<ptrdiff_t>(j));
              members.erase(members.begin() + static_cast<ptrdiff_t>(j));
              merged = true;
            }
          }
        }
      }

      // Prefetch groups that actually combined several query footprints.
      for (size_t g = 0; g < regions.size(); ++g) {
        if (members[g] < 2) continue;
        const semstore::RemainderResult rem = semstore::GenerateRemainder(
            regions[g], store_.CoveredRegions(def->name, MinEpoch()),
            core::Optimizer::DimSpecsFor(*def),
            [&](const Box& box) {
              return stats_.EstimateRows(def->name, box);
            },
            rem_options);
        if (rem.fully_covered) continue;
        bool issued = false;
        for (const Box& box : rem.remainder_boxes) {
          Result<market::RestCall> call = market::CallFromRegion(*def, box);
          if (!call.ok()) {
            const Status::Code code = call.status().code();
            // Only the two EXPECTED inexpressibility codes are swallowed
            // (bound attribute unconstrained, categorical multi-value
            // sub-range §4.2) — and counted, so batch reports distinguish
            // "nothing to merge" from "merged but not issuable". Anything
            // else is a real bug and propagates.
            if (code == Status::Code::kBindingViolation ||
                code == Status::Code::kNotSupported) {
              ++report.prefetch_skipped_calls;
              continue;
            }
            return call.status();
          }
          // Batch prefetch spend is shared across the batch's queries, so it
          // is attributed to the tenant under the reserved query_id 0 — the
          // ledger-total == meter-total invariant still holds globally.
          market::CallObs prefetch_obs;
          prefetch_obs.tenant = config_.tenant;
          prefetch_obs.query_id = 0;
          prefetch_obs.ledger = &obs_->ledger;
          Result<market::CallResult> result = prefetch_connector->Get(
              *call, market::kNoDeadline, &prefetch_obs);
          if (!result.ok()) {
            const Status::Code code = result.status().code();
            if (IsRetryable(code) || code == Status::Code::kDeadlineExceeded) {
              // Prefetching is an optimization: against a flaky market,
              // abandon the group and let each query fetch (and retry) its
              // own footprint in phase 3.
              ++report.prefetch_failed_calls;
              continue;
            }
            return result.status();
          }
          report.prefetch_transactions += result->transactions;
          issued = true;
        }
        if (issued) ++report.merged_groups;
      }
    }
  }

  // ---- Phase 3: execute the queries normally; prefetched data is served
  // from the semantic store.
  for (const BatchQuery& q : batch) {
    Result<QueryReport> one = QueryWithReport(q.sql, q.params);
    PAYLESS_RETURN_IF_ERROR(one.status());
    PAYLESS_RETURN_IF_ERROR(one->error);
    report.results.push_back(std::move(one->result));
  }
  report.transactions_spent = total_transactions() - before;
  return report;
}

void PayLess::RegisterIntrospection(obs::HttpExpositionServer* server,
                                    obs::TimeSeriesSampler* sampler) {
  server->SetExplainHandler(
      [this](const std::string& sql) { return ExplainText(sql); });
  server->SetSavingsLedger(&obs_->savings);
  server->SetStoreStatsProvider([this] {
    std::string json = store_.StatsJson();
    if (durability_ != nullptr && !json.empty() && json.back() == '}') {
      // Splice the durability block into the /store document so one fetch
      // shows both what is held and how durable it is.
      json.pop_back();
      json += ",\"durability\":" + durability_->StatsJson() + "}";
    }
    return json;
  });
  if (sampler != nullptr) server->SetTimeSeriesSampler(sampler);
  server->AddRoute("/markets", [this](const std::string&) {
    std::string json = router_ != nullptr
                           ? router_->StatsJson()
                           : std::string("{\"federated\":false}");
    if (placement_ != nullptr && !json.empty() && json.back() == '}') {
      // Splice the placement block in: one fetch shows where calls went
      // AND which purchased slabs the budget keeps.
      json.pop_back();
      json += ",\"placement\":" + placement_->StatsJson() + "}";
    }
    return obs::HttpReply::Json(std::move(json));
  });
  // Tail-latency decomposition: every HDR histogram in the registry
  // (end-to-end, per stage, market RTT per endpoint, admission wait) as
  // {count, sum, p50/p95/p99/p999}.
  server->AddRoute("/latency", [this](const std::string&) {
    return obs::HttpReply::Json(obs_->metrics.LatencyJson());
  });
  // The flight recorder's ring: the last N completed query traces and
  // scheduler batch events, newest last — what just happened, even when
  // nobody was watching.
  server->AddRoute("/flightrecorder", [this](const std::string&) {
    return obs::HttpReply::Json(obs_->flight_recorder.ToJson());
  });
  // The recorded workload: journal size/seq/segments plus per-tenant record
  // counts, spend and observed arrival rates — what the deployment advisor
  // would replay. {"recording":false} when no journal is configured.
  server->AddRoute("/workload", [this](const std::string&) {
    std::string json = config_.workload_journal != nullptr
                           ? config_.workload_journal->StatsJson()
                           : std::string("{\"recording\":false}");
    return obs::HttpReply::Json(std::move(json));
  });
}

Status PayLess::LoadLocalTable(const std::string& name,
                               const std::vector<Row>& rows) {
  const catalog::TableDef* def = catalog_->FindTable(name);
  if (def == nullptr) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  if (!def->is_local) {
    return Status::InvalidArgument("table '" + name +
                                   "' is a market table, not local");
  }
  PAYLESS_RETURN_IF_ERROR(local_db_.CreateTable(*def));
  return local_db_.InsertRows(name, rows);
}

}  // namespace payless::exec
