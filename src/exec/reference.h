// Reference oracle: evaluates a query directly over the seller-side truth,
// bypassing billing, binding patterns, caching and optimization. Used by
// integration tests to verify that every optimized/cached execution path
// returns exactly the right rows, and by examples to sanity-check output.
#ifndef PAYLESS_EXEC_REFERENCE_H_
#define PAYLESS_EXEC_REFERENCE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "market/data_market.h"
#include "storage/database.h"

namespace payless::exec {

/// Evaluates `sql` against the raw hosted market data plus `local_db`.
Result<storage::Table> ReferenceEvaluate(const catalog::Catalog& catalog,
                                         const market::DataMarket& market,
                                         const storage::Database& local_db,
                                         const std::string& sql,
                                         const std::vector<Value>& params = {});

/// Order-insensitive multiset equality of two result tables (schema arity
/// must match; values compared with numeric cross-type equality).
bool SameResult(const storage::Table& a, const storage::Table& b);

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_REFERENCE_H_
