#include "exec/execution_engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <unordered_set>

#include "core/optimizer.h"
#include "exec/local_eval.h"
#include "federation/endpoint_router.h"
#include "federation/market_endpoint.h"
#include "market/call_scheduler.h"
#include "market/rest_call.h"
#include "obs/trace.h"
#include "storage/ops.h"

namespace payless::exec {

namespace {

/// Row collector with whole-row deduplication (cached and freshly fetched
/// tuples can overlap when a remainder box spans stored regions).
class RowSet {
 public:
  void Add(const Row& row) {
    if (seen_.insert(row).second) rows_.push_back(row);
  }
  void AddAll(const std::vector<Row>& rows) {
    for (const Row& row : rows) Add(row);
  }
  std::vector<Row> Take() { return std::move(rows_); }
  size_t size() const { return rows_.size(); }

 private:
  std::unordered_set<Row, RowHasher> seen_;
  std::vector<Row> rows_;
};

/// Microseconds elapsed since `start` — the stage-decomposition clock.
int64_t StageMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t ResolveFanOut(const ExecConfig& config) {
  if (config.max_parallel_calls != 0) return config.max_parallel_calls;
  // The event-loop scheduler makes in-flight calls cheap (a timer, not a
  // thread), so the default window need not track the core count.
  if (config.use_call_scheduler) return 16;
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Issues every call — in parallel when a pool and fan-out allow — and
/// merges results strictly in call order, so rows, row order, per-call
/// billing and stats are byte-identical to the serial loop. Errors are
/// reported in call order too. Pricing depends only on seller-side data
/// (never on buyer-side state), so issue order cannot change what any one
/// call is billed.
///
/// Fail-fast under faults: the first call whose retries exhaust (or whose
/// deadline blows) cancels the not-yet-issued siblings, so a doomed access
/// stops spending money. Calls already delivered stay billed AND counted in
/// exec_stats — that is the query's spend-so-far, and their results reached
/// the listeners, so a re-issued query reuses them via the semantic store.
Status IssueCalls(market::MarketConnector* connector,
                  common::ThreadPool* pool, size_t fan_out,
                  bool use_scheduler,
                  const std::vector<market::RestCall>& calls,
                  market::Clock::time_point deadline,
                  const market::CallObs& call_obs, RowSet* rows,
                  ExecStats* exec_stats,
                  std::vector<bool>* delivered = nullptr) {
  if (delivered != nullptr) delivered->assign(calls.size(), false);
  std::vector<std::optional<Result<market::CallResult>>> outcomes;
  if (use_scheduler && fan_out > 1 && calls.size() > 1) {
    // Event-loop dispatch: the whole batch rides the connector's timer
    // loop with `fan_out` calls in flight; claim-time cancellation and
    // index-aligned outcomes match the thread-per-call path exactly.
    std::vector<market::CallScheduler::Item> items(calls.size());
    for (size_t i = 0; i < calls.size(); ++i) {
      items[i].call = &calls[i];
      items[i].deadline = deadline;
      items[i].call_obs = &call_obs;
    }
    outcomes = connector->scheduler()->ExecuteBatch(items, fan_out,
                                                    /*cancel_on_error=*/true);
  } else {
    outcomes.resize(calls.size());
    std::atomic<bool> cancelled{false};
    common::ParallelFor(pool, calls.size(), fan_out, [&](size_t i) {
      if (cancelled.load(std::memory_order_relaxed)) return;  // sibling failed
      outcomes[i].emplace(connector->Get(calls[i], deadline, &call_obs));
      if (!(*outcomes[i]).ok()) {
        cancelled.store(true, std::memory_order_relaxed);
      }
    });
  }
  // Accumulate EVERY delivered result before reporting the (call-order
  // first) error, so exec_stats is the true spend-so-far.
  Status first_error = Status::OK();
  for (size_t i = 0; i < outcomes.size(); ++i) {
    std::optional<Result<market::CallResult>>& outcome = outcomes[i];
    if (!outcome.has_value()) {
      if (exec_stats != nullptr) ++exec_stats->calls_cancelled;
      continue;  // skipped after a sibling's failure: never issued
    }
    Result<market::CallResult>& result = *outcome;
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    if (delivered != nullptr) (*delivered)[i] = true;
    rows->AddAll(result->rows);
    if (exec_stats != nullptr) {
      ++exec_stats->calls;
      exec_stats->transactions += result->transactions;
      exec_stats->rows_from_market += result->num_records;
    }
  }
  return first_error;
}

/// IssueCalls plus cross-endpoint failover. When the current endpoint dies
/// for this dataset (breaker open / retries exhausted — a retryable code),
/// only the calls that delivered NOTHING there are re-issued at the
/// next-cheapest live endpoint the router names. Delivered calls stay
/// billed at the endpoint that served them and their rows are already
/// merged, so failover never buys a row twice; each connector bills its
/// own meter, so the ledger keeps reconciling with the per-endpoint meter
/// totals. Without a router this is exactly IssueCalls.
Status IssueWithFailover(market::MarketConnector* connector,
                         federation::EndpointRouter* router,
                         const std::string& dataset,
                         common::ThreadPool* pool, size_t fan_out,
                         bool use_scheduler,
                         std::vector<market::RestCall> calls,
                         market::Clock::time_point deadline,
                         const market::CallObs& call_obs, RowSet* rows,
                         ExecStats* exec_stats) {
  std::vector<std::string> tried;
  while (true) {
    if (router != nullptr && !calls.empty()) {
      router->CountRoutedCalls(connector->market_label(),
                               static_cast<int64_t>(calls.size()));
    }
    std::vector<bool> delivered;
    const Status status =
        IssueCalls(connector, pool, fan_out, use_scheduler, calls, deadline,
                   call_obs, rows, exec_stats, &delivered);
    if (status.ok() || router == nullptr || !IsRetryable(status.code())) {
      return status;
    }
    std::vector<market::RestCall> remaining;
    remaining.reserve(calls.size());
    for (size_t i = 0; i < calls.size(); ++i) {
      if (!delivered[i]) remaining.push_back(std::move(calls[i]));
    }
    tried.push_back(connector->market_label());
    const std::string next = router->NextCheapestLive(dataset, tried);
    if (next.empty()) return status;  // every endpoint tried or down
    connector = router->ConnectorFor(next);
    router->CountFailover();
    calls = std::move(remaining);
  }
}

}  // namespace

Result<storage::Table> ExecutionEngine::FetchRelation(
    const sql::BoundQuery& query, const core::AccessSpec& access,
    size_t access_index, const ColumnTable& left_result,
    const std::vector<size_t>& offsets, const ExecConfig& config,
    ExecStats* exec_stats) {
  const sql::BoundRelation& rel = query.relations[access.rel];
  const catalog::TableDef& def = *rel.def;
  const size_t fan_out = ResolveFanOut(config);

  // Per-operator span: every access of the plan gets one; the market-call
  // spans the connector opens underneath are its children — including the
  // ones issued from pool workers during parallel dispatch. The estimate
  // attrs mirror the AccessSpec so EXPLAIN ANALYZE can join estimated vs.
  // actual per access; the actual deltas are attached below, after the
  // access ran.
  obs::ScopedSpan access_span(config.obs.trace, "access:" + def.name,
                              config.obs.parent_span);
  access_span.AddAttr("kind", std::string(core::AccessKindName(access.kind)));
  access_span.AddAttr("access_index", static_cast<int64_t>(access_index));
  access_span.AddAttr("est_rows", llround(access.est_rows));
  access_span.AddAttr("est_transactions", access.est_transactions);
  access_span.AddAttr("est_calls", access.est_calls);
  if (access.kind == core::AccessSpec::Kind::kBind) {
    access_span.AddAttr("est_bind_values", llround(access.est_bind_values));
  }
  market::CallObs call_obs = config.obs;
  if (access_span.id() != 0) call_obs.parent_span = access_span.id();

  // Buy-site routing: with a router, this access's calls start at the
  // connector of the endpoint the optimizer chose (`buy_site`); without
  // one, at the single market connector. Failover mid-access is handled
  // inside IssueWithFailover.
  market::MarketConnector* connector =
      router_ != nullptr ? router_->ConnectorFor(access.buy_site) : connector_;
  if (router_ != nullptr && !access.buy_site.empty()) {
    access_span.AddAttr("buy_site", access.buy_site);
  }
  // The buy-site's page size: remainder chunking must match the terms the
  // chosen endpoint actually bills under, not the base catalog's.
  const auto buy_site_tuples_per_txn = [&](int64_t base) -> int64_t {
    if (router_ == nullptr || access.buy_site.empty()) return base;
    federation::MarketEndpoint* endpoint =
        router_->federation()->endpoint(access.buy_site);
    if (endpoint == nullptr) return base;
    const catalog::DatasetDef* terms =
        endpoint->catalog().FindDataset(def.dataset);
    return terms != nullptr ? terms->tuples_per_transaction : base;
  };

  const auto issue_all = [&](const std::vector<market::RestCall>& calls,
                             RowSet* rows) -> Status {
    return IssueWithFailover(connector, router_, def.dataset, pool_, fan_out,
                             config.use_call_scheduler, calls, config.deadline,
                             call_obs, rows, exec_stats);
  };

  const ExecStats before = exec_stats != nullptr ? *exec_stats : ExecStats{};
  const auto fetch = [&]() -> Result<storage::Table> {
    storage::Table table(storage::SchemaFromTableDef(def));

    switch (access.kind) {
      case core::AccessSpec::Kind::kEmpty:
        return table;

      case core::AccessSpec::Kind::kLocal: {
        const storage::Table* local = local_db_->FindTable(def.name);
        if (local == nullptr) {
          return Status::NotFound("local table '" + def.name +
                                  "' has no data in the buyer DBMS");
        }
        return *local;
      }

      case core::AccessSpec::Kind::kCached: {
        const std::vector<Row> rows =
            store_->RowsInRegion(def, rel.QueryRegion(), config.min_epoch);
        if (exec_stats != nullptr) {
          exec_stats->rows_from_cache += static_cast<int64_t>(rows.size());
        }
        access_span.AddAttr("rows_cached", static_cast<int64_t>(rows.size()));
        for (const Row& row : rows) table.Append(row);
        return table;
      }

      case core::AccessSpec::Kind::kPlain: {
        const Box region = rel.QueryRegion();
        RowSet rows;
        if (config.use_sqr) {
          // Re-run the rewrite against the live store: views may have grown
          // since planning (earlier accesses of this very query included).
          //
          // The coverage snapshot MUST be taken before the row harvest: the
          // store only grows, so any view a concurrent query slips in between
          // the two reads is missing from this snapshot and gets re-fetched
          // by the remainder (RowSet dedupes the overlap). Snapshotting
          // coverage after the harvest loses those rows instead — the
          // remainder would treat the region as served even though the
          // harvest never saw it.
          const std::vector<Box> covered =
              store_->CoveredRegions(def.name, config.min_epoch);
          const std::vector<Row> cached =
              store_->RowsInRegion(def, region, config.min_epoch);
          if (exec_stats != nullptr) {
            exec_stats->rows_from_cache += static_cast<int64_t>(cached.size());
          }
          rows.AddAll(cached);
          const catalog::DatasetDef* dataset = catalog_->DatasetOf(def);
          semstore::RemainderOptions rem_options = config.remainder;
          rem_options.tuples_per_transaction =
              buy_site_tuples_per_txn(dataset->tuples_per_transaction);
          const semstore::RemainderResult rem = semstore::GenerateRemainder(
              region, covered, core::Optimizer::DimSpecsFor(def),
              [&](const Box& box) {
                return stats_->EstimateRows(def.name, box);
              },
              rem_options);
          std::vector<market::RestCall> calls;
          calls.reserve(rem.remainder_boxes.size());
          for (const Box& box : rem.remainder_boxes) {
            Result<market::RestCall> call = market::CallFromRegion(def, box);
            PAYLESS_RETURN_IF_ERROR(call.status());
            calls.push_back(std::move(*call));
          }
          access_span.AddAttr("rows_cached",
                              static_cast<int64_t>(rows.size()));
          access_span.AddAttr("remainder_calls",
                              static_cast<int64_t>(calls.size()));
          PAYLESS_RETURN_IF_ERROR(issue_all(calls, &rows));
        } else {
          market::RestCall call;
          call.table = def.name;
          call.conditions = rel.conditions;
          PAYLESS_RETURN_IF_ERROR(issue_all({call}, &rows));
        }
        for (Row& row : rows.Take()) table.Append(std::move(row));
        return table;
      }

      case core::AccessSpec::Kind::kBind: {
        // Binding columns and the left-result positions feeding them.
        std::vector<size_t> bind_cols;
        std::vector<size_t> left_positions;
        for (const sql::JoinEdge& edge : access.bind_edges) {
          const bool own_left = edge.left.rel == access.rel;
          const sql::BoundColumnRef& own = own_left ? edge.left : edge.right;
          const sql::BoundColumnRef& other = own_left ? edge.right : edge.left;
          if (std::find(bind_cols.begin(), bind_cols.end(), own.col) !=
              bind_cols.end()) {
            continue;  // one feeding edge per binding column suffices
          }
          bind_cols.push_back(own.col);
          left_positions.push_back(offsets[other.rel] + other.col);
        }
        if (bind_cols.empty()) {
          return Status::Internal("bind access without usable bind edges");
        }

        // Distinct binding combinations from the running join result.
        std::vector<Row> combos;
        {
          std::unordered_set<Row, RowHasher> seen;
          for (size_t r = 0; r < left_result.num_rows(); ++r) {
            Row combo;
            combo.reserve(left_positions.size());
            bool has_null = false;
            for (const size_t pos : left_positions) {
              const Value& v = left_result.At(r, pos);
              if (v.is_null()) has_null = true;
              combo.push_back(v);
            }
            if (has_null) continue;  // NULL never joins
            if (seen.insert(combo).second) combos.push_back(std::move(combo));
          }
        }

        RowSet rows;
        const bool single_dim = bind_cols.size() == 1;
        if (config.use_sqr && single_dim) {
          // Fig. 9 path: the binding values are KNOWN here, so the bind
          // dimension becomes a value-set dimension and remainder generation
          // may merge values into range calls or reuse stored slabs.
          const size_t col = bind_cols[0];
          const catalog::ColumnDef& column = def.columns[col];
          const std::vector<size_t> constrainable = def.ConstrainableColumns();
          const auto dim_it =
              std::find(constrainable.begin(), constrainable.end(), col);
          assert(dim_it != constrainable.end());
          const size_t dim =
              static_cast<size_t>(dim_it - constrainable.begin());

          Box region = rel.QueryRegion();
          std::vector<int64_t> codes;
          for (const Row& combo : combos) {
            const std::optional<int64_t> code = column.domain.Encode(combo[0]);
            // Values outside the published domain cannot exist market-side.
            if (code.has_value() && region.dim(dim).Contains(*code)) {
              codes.push_back(*code);
            }
          }
          std::sort(codes.begin(), codes.end());
          codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
          if (codes.empty()) return table;

          std::vector<semstore::DimSpec> dims =
              core::Optimizer::DimSpecsFor(def);
          dims[dim].mode = semstore::DimSpec::Mode::kValueSet;
          dims[dim].known_values = codes;
          dims[dim].whole_domain_allowed =
              column.binding == catalog::BindingKind::kFree;
          region.dim(dim) = Interval(codes.front(), codes.back());

          // Stored tuples on the requested slabs. Coverage is snapshotted
          // before the harvest for the same reason as the range path above:
          // a slab a concurrent query stores between the two reads must land
          // in the remainder (and be deduped), not silently count as served.
          const std::vector<Box> covered =
              store_->CoveredRegions(def.name, config.min_epoch);
          for (const int64_t code : codes) {
            Box slab = region;
            slab.dim(dim) = Interval::Point(code);
            const std::vector<Row> cached =
                store_->RowsInRegion(def, slab, config.min_epoch);
            if (exec_stats != nullptr) {
              exec_stats->rows_from_cache +=
                  static_cast<int64_t>(cached.size());
            }
            rows.AddAll(cached);
          }

          const catalog::DatasetDef* dataset = catalog_->DatasetOf(def);
          semstore::RemainderOptions rem_options = config.remainder;
          rem_options.tuples_per_transaction =
              buy_site_tuples_per_txn(dataset->tuples_per_transaction);
          const semstore::RemainderResult rem = semstore::GenerateRemainder(
              region, covered, dims,
              [&](const Box& box) {
                return stats_->EstimateRows(def.name, box);
              },
              rem_options);
          std::vector<market::RestCall> calls;
          calls.reserve(rem.remainder_boxes.size());
          for (const Box& box : rem.remainder_boxes) {
            Result<market::RestCall> call = market::CallFromRegion(def, box);
            PAYLESS_RETURN_IF_ERROR(call.status());
            calls.push_back(std::move(*call));
          }
          access_span.AddAttr("binding_values",
                              static_cast<int64_t>(codes.size()));
          access_span.AddAttr("remainder_calls",
                              static_cast<int64_t>(calls.size()));
          PAYLESS_RETURN_IF_ERROR(issue_all(calls, &rows));
        } else {
          // One point call per binding combination; with SQR on, fully
          // covered combinations are served from the store. Distinct
          // combinations have pairwise-disjoint point regions, so neither the
          // coverage decision nor any call's price depends on the order the
          // combinations complete in — they are dispatched with the
          // configured fan-out and merged back in binding-value order,
          // keeping rows, row order and billing identical to the serial loop.
          struct ComboOutcome {
            std::optional<Result<market::CallResult>> fetched;
            std::vector<Row> cached;
            bool from_cache = false;
            bool cancelled = false;
          };
          std::vector<ComboOutcome> outcomes(combos.size());
          const auto combo_call = [&](size_t i) {
            market::RestCall call;
            call.table = def.name;
            call.conditions = rel.conditions;
            for (size_t c = 0; c < bind_cols.size(); ++c) {
              call.conditions[bind_cols[c]] =
                  market::AttrCondition::Point(combos[i][c]);
            }
            return call;
          };
          if (config.use_call_scheduler && fan_out > 1 && combos.size() > 1) {
            // Store probes are lock-free snapshot reads, so resolve every
            // combination's coverage serially up front, then batch the
            // combinations that actually need the market through the
            // event-loop scheduler with `fan_out` calls in flight.
            std::vector<market::RestCall> calls(combos.size());
            std::vector<size_t> need;
            for (size_t i = 0; i < combos.size(); ++i) {
              calls[i] = combo_call(i);
              if (config.use_sqr) {
                const Box point_region = market::CallRegion(def, calls[i]);
                if (point_region.empty()) continue;  // outside the domain
                if (store_->Covers(def, point_region, config.min_epoch)) {
                  outcomes[i].cached = store_->RowsInRegion(def, point_region,
                                                            config.min_epoch);
                  outcomes[i].from_cache = true;
                  continue;
                }
              }
              need.push_back(i);
            }
            std::vector<market::CallScheduler::Item> items(need.size());
            for (size_t j = 0; j < need.size(); ++j) {
              items[j].call = &calls[need[j]];
              items[j].deadline = config.deadline;
              items[j].call_obs = &call_obs;
            }
            std::vector<std::optional<Result<market::CallResult>>> fetched =
                connector->scheduler()->ExecuteBatch(
                    items, fan_out, /*cancel_on_error=*/true);
            for (size_t j = 0; j < need.size(); ++j) {
              if (fetched[j].has_value()) {
                outcomes[need[j]].fetched = std::move(fetched[j]);
              } else {
                outcomes[need[j]].cancelled = true;
              }
            }
          } else {
            std::atomic<bool> cancelled{false};
            common::ParallelFor(pool_, combos.size(), fan_out, [&](size_t i) {
              if (cancelled.load(std::memory_order_relaxed)) {
                // A sibling binding value exhausted its retries: stop
                // spending on a bind join that can no longer deliver.
                outcomes[i].cancelled = true;
                return;
              }
              market::RestCall call = combo_call(i);
              if (config.use_sqr) {
                const Box point_region = market::CallRegion(def, call);
                if (point_region.empty()) return;  // value outside the domain
                if (store_->Covers(def, point_region, config.min_epoch)) {
                  outcomes[i].cached = store_->RowsInRegion(def, point_region,
                                                            config.min_epoch);
                  outcomes[i].from_cache = true;
                  return;
                }
              }
              outcomes[i].fetched.emplace(
                  connector->Get(call, config.deadline, &call_obs));
              if (!(*outcomes[i].fetched).ok()) {
                cancelled.store(true, std::memory_order_relaxed);
              }
            });
          }
          // Accumulate every delivered/cached outcome before surfacing the
          // first (binding-value-order) error: exec_stats must equal the
          // spend-so-far even when the access fails.
          Status first_error = Status::OK();
          int64_t combos_cached = 0;
          int64_t combos_issued = 0;
          for (const ComboOutcome& outcome : outcomes) {
            if (outcome.from_cache) ++combos_cached;
            if (outcome.fetched.has_value()) ++combos_issued;
          }
          access_span.AddAttr("binding_values",
                              static_cast<int64_t>(combos.size()));
          access_span.AddAttr("combos_from_store", combos_cached);
          if (router_ != nullptr && combos_issued > 0) {
            router_->CountRoutedCalls(connector->market_label(),
                                      combos_issued);
          }
          for (ComboOutcome& outcome : outcomes) {
            if (outcome.cancelled) {
              if (exec_stats != nullptr) ++exec_stats->calls_cancelled;
              continue;
            }
            if (outcome.fetched.has_value()) {
              Result<market::CallResult>& result = *outcome.fetched;
              if (!result.ok()) {
                if (first_error.ok()) first_error = result.status();
                continue;
              }
              rows.AddAll(result->rows);
              if (exec_stats != nullptr) {
                ++exec_stats->calls;
                exec_stats->transactions += result->transactions;
                exec_stats->rows_from_market += result->num_records;
              }
            } else if (outcome.from_cache) {
              if (exec_stats != nullptr) {
                exec_stats->rows_from_cache +=
                    static_cast<int64_t>(outcome.cached.size());
              }
              rows.AddAll(outcome.cached);
            }
          }
          if (!first_error.ok() && router_ != nullptr &&
              IsRetryable(first_error.code())) {
            // The buy-site died mid-bind-join: re-issue only the binding
            // values that delivered nothing (errored or cancelled-unissued)
            // at the next-cheapest live endpoint. Delivered siblings stay
            // billed where they ran; RowSet dedupes any overlap.
            std::vector<market::RestCall> rescue;
            for (size_t i = 0; i < combos.size(); ++i) {
              const ComboOutcome& outcome = outcomes[i];
              const bool failed = outcome.cancelled ||
                                  (outcome.fetched.has_value() &&
                                   !(*outcome.fetched).ok());
              if (!failed) continue;
              market::RestCall call = combo_call(i);
              if (config.use_sqr &&
                  market::CallRegion(def, call).empty()) {
                continue;  // value outside the published domain
              }
              rescue.push_back(std::move(call));
            }
            const std::string next = router_->NextCheapestLive(
                def.dataset, {connector->market_label()});
            if (!next.empty()) {
              router_->CountFailover();
              first_error = IssueWithFailover(
                  router_->ConnectorFor(next), router_, def.dataset, pool_,
                  fan_out, config.use_call_scheduler, std::move(rescue),
                  config.deadline, call_obs, &rows, exec_stats);
            }
          }
          PAYLESS_RETURN_IF_ERROR(first_error);
        }
        for (Row& row : rows.Take()) table.Append(std::move(row));
        return table;
      }
    }
    return Status::Internal("unknown access kind");
  };

  Result<storage::Table> fetched = fetch();
  // Actuals, attached whether the access succeeded or died mid-flight:
  // what EXPLAIN ANALYZE (and any trace consumer) compares the estimates
  // against. `transactions` here is the spend billed to delivered calls;
  // retries and waste live on the market.get child spans.
  if (exec_stats != nullptr) {
    access_span.AddAttr("calls", exec_stats->calls - before.calls);
    access_span.AddAttr("transactions",
                        exec_stats->transactions - before.transactions);
    access_span.AddAttr("rows_from_market",
                        exec_stats->rows_from_market - before.rows_from_market);
  }
  if (fetched.ok()) {
    access_span.AddAttr("rows", static_cast<int64_t>(fetched->num_rows()));
  }
  return fetched;
}

Result<storage::Table> ExecutionEngine::Execute(const sql::BoundQuery& query,
                                                const core::Plan& plan,
                                                const ExecConfig& config,
                                                ExecStats* exec_stats) {
  const size_t n = query.relations.size();
  if (plan.accesses.size() != n) {
    return Status::InvalidArgument("plan covers " +
                                   std::to_string(plan.accesses.size()) +
                                   " of " + std::to_string(n) + " relations");
  }
  std::vector<bool> seen(n, false);
  for (const core::AccessSpec& access : plan.accesses) {
    if (access.rel >= n || seen[access.rel]) {
      return Status::InvalidArgument("plan accesses a relation twice");
    }
    seen[access.rel] = true;
  }

  std::vector<size_t> offsets(n, 0);
  std::vector<bool> placed(n, false);
  ColumnTable current;  // unit table: zero columns, one row
  current.Grow(1);
  std::vector<storage::SchemaColumn> placed_cols;
  size_t width = 0;

  // Stage decomposition (wall-clock partition): everything FetchRelation
  // does — store reads, remainder generation, market calls — is `fetch`;
  // running-join maintenance is `merge`; the final SELECT/GROUP BY is
  // `local_eval`. These three plus the planner's stages sum to the query's
  // end-to-end latency (small bookkeeping residue aside).
  obs::QueryStageAccumulator* const stages = config.obs.stages;
  for (size_t a = 0; a < plan.accesses.size(); ++a) {
    const core::AccessSpec& access = plan.accesses[a];
    const auto fetch_start = std::chrono::steady_clock::now();
    Result<storage::Table> fetched =
        FetchRelation(query, access, a, current, offsets, config, exec_stats);
    if (stages != nullptr) {
      stages->Add(obs::kStageFetch, StageMicros(fetch_start));
    }
    PAYLESS_RETURN_IF_ERROR(fetched.status());

    // Maintain the running join columnar (it feeds later bind joins).
    const auto merge_start = std::chrono::steady_clock::now();
    const ColumnTable filtered =
        FilterRelationColumns(query, access.rel, *fetched);
    std::vector<std::pair<size_t, size_t>> keys;
    for (const sql::JoinEdge& e : query.joins) {
      if (e.left.rel == access.rel && placed[e.right.rel]) {
        keys.emplace_back(offsets[e.right.rel] + e.right.col, e.left.col);
      } else if (e.right.rel == access.rel && placed[e.left.rel]) {
        keys.emplace_back(offsets[e.left.rel] + e.left.col, e.right.col);
      }
    }
    current = keys.empty() ? BlockCartesian(current, filtered)
                           : BlockHashJoin(current, filtered, keys);
    offsets[access.rel] = width;
    width += filtered.num_columns();
    placed[access.rel] = true;
    for (const storage::SchemaColumn& col : fetched->schema().columns()) {
      placed_cols.push_back(col);
    }
    if (stages != nullptr) {
      stages->Add(obs::kStageMerge, StageMicros(merge_start));
    }
  }

  // The running join already holds the complete filtered result: finish the
  // SELECT / GROUP BY directly over it instead of re-joining from scratch.
  const auto eval_start = std::chrono::steady_clock::now();
  Result<storage::Table> result =
      EvaluateJoined(query, current, offsets, std::move(placed_cols));
  if (stages != nullptr) {
    stages->Add(obs::kStageLocalEval, StageMicros(eval_start));
  }
  return result;
}

}  // namespace payless::exec
