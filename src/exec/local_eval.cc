#include "exec/local_eval.h"

#include <algorithm>
#include <cassert>

#include "market/rest_call.h"
#include "storage/ops.h"

namespace payless::exec {

namespace {

/// Join-result column position of a bound column ref, given per-relation
/// offsets in the concatenated schema.
size_t ColumnPosition(const sql::BoundQuery& query,
                      const std::vector<size_t>& offsets,
                      const sql::BoundColumnRef& ref) {
  (void)query;
  return offsets[ref.rel] + ref.col;
}

}  // namespace

storage::Table FilterRelation(const sql::BoundQuery& query, size_t rel,
                              const storage::Table& raw) {
  return storage::Table(raw.schema(),
                        RowsFromColumns(FilterRelationColumns(query, rel, raw)));
}

ColumnTable FilterRelationColumns(const sql::BoundQuery& query, size_t rel,
                                  const storage::Table& raw) {
  const sql::BoundRelation& relation = query.relations[rel];
  ColumnTable out(raw.schema().num_columns());
  if (relation.always_empty) return out;

  const std::vector<Row>& rows = raw.rows();
  std::vector<uint32_t> sel;
  sel.reserve(kBlockCapacity);
  for (size_t base = 0; base < rows.size(); base += kBlockCapacity) {
    const size_t limit = std::min(base + kBlockCapacity, rows.size());
    sel.clear();
    for (size_t i = base; i < limit; ++i) {
      sel.push_back(static_cast<uint32_t>(i));
    }
    // One predicate column at a time, compacting the selection vector: each
    // pass touches only the column it tests, and rows dropped by an earlier
    // predicate never evaluate a later one (same short-circuit as the
    // row-at-a-time loop, so the kept set and its order are identical).
    for (size_t c = 0; c < relation.conditions.size() && !sel.empty(); ++c) {
      const market::AttrCondition& cond = relation.conditions[c];
      size_t kept = 0;
      for (const uint32_t i : sel) {
        if (cond.Matches(rows[i][c])) sel[kept++] = i;
      }
      sel.resize(kept);
    }
    for (const sql::ResidualPredicate& pred : query.residuals) {
      if (pred.column.rel != rel) continue;
      if (sel.empty()) break;
      size_t kept = 0;
      for (const uint32_t i : sel) {
        if (EvalCompare(rows[i][pred.column.col], pred.op, pred.literal)) {
          sel[kept++] = i;
        }
      }
      sel.resize(kept);
    }
    // Columnar gather of the survivors.
    const size_t dst = out.num_rows();
    out.Grow(sel.size());
    for (size_t c = 0; c < out.num_columns(); ++c) {
      for (size_t i = 0; i < sel.size(); ++i) {
        out.At(dst + i, c) = rows[sel[i]][c];
      }
    }
  }
  return out;
}

Result<storage::Table> EvaluateLocally(
    const sql::BoundQuery& query,
    const std::vector<storage::Table>& rel_tables) {
  const size_t n = query.relations.size();
  if (rel_tables.size() != n) {
    return Status::InvalidArgument("rel_tables arity mismatch");
  }

  // Filter each relation (block-vectorized), then join greedily: repeatedly
  // attach a relation connected to the joined set (hash join), falling back
  // to Cartesian for disconnected components. The whole pipeline stays
  // columnar until the final aggregate/sort; joined-schema offsets track
  // placement.
  std::vector<ColumnTable> filtered;
  filtered.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    filtered.push_back(FilterRelationColumns(query, i, rel_tables[i]));
  }

  std::vector<size_t> offsets(n, 0);
  std::vector<bool> done(n, false);
  ColumnTable current;  // starts as the unit table: zero columns, one row
  current.Grow(1);
  std::vector<storage::SchemaColumn> placed_cols;
  size_t placed_width = 0;

  for (size_t round = 0; round < n; ++round) {
    // Prefer a relation with a join edge into the placed set.
    size_t pick = n;
    for (size_t i = 0; i < n && pick == n; ++i) {
      if (done[i]) continue;
      if (round == 0) {
        pick = i;
        break;
      }
      for (const sql::JoinEdge& e : query.joins) {
        const size_t a = e.left.rel;
        const size_t b = e.right.rel;
        if ((a == i && done[b]) || (b == i && done[a])) {
          pick = i;
          break;
        }
      }
    }
    if (pick == n) {  // disconnected: take the first remaining (Cartesian)
      for (size_t i = 0; i < n; ++i) {
        if (!done[i]) {
          pick = i;
          break;
        }
      }
    }
    assert(pick < n);

    std::vector<std::pair<size_t, size_t>> keys;
    for (const sql::JoinEdge& e : query.joins) {
      const sql::BoundColumnRef& l = e.left;
      const sql::BoundColumnRef& r = e.right;
      if (l.rel == pick && done[r.rel]) {
        keys.emplace_back(ColumnPosition(query, offsets, r), l.col);
      } else if (r.rel == pick && done[l.rel]) {
        keys.emplace_back(ColumnPosition(query, offsets, l), r.col);
      }
    }
    current = keys.empty() ? BlockCartesian(current, filtered[pick])
                           : BlockHashJoin(current, filtered[pick], keys);
    offsets[pick] = placed_width;
    placed_width += filtered[pick].num_columns();
    for (const storage::SchemaColumn& col :
         rel_tables[pick].schema().columns()) {
      placed_cols.push_back(col);
    }
    done[pick] = true;
  }

  return EvaluateJoined(query, current, offsets, std::move(placed_cols));
}

Result<storage::Table> EvaluateJoined(
    const sql::BoundQuery& query, const ColumnTable& current,
    const std::vector<size_t>& offsets,
    std::vector<storage::SchemaColumn> placed_cols) {
  const size_t n = query.relations.size();

  // ---- SELECT / GROUP BY output.
  const auto position = [&](const sql::BoundColumnRef& ref) {
    return ColumnPosition(query, offsets, ref);
  };

  // Renames output columns to the select-list names/aliases (skipped for
  // SELECT *, whose expansion keeps the qualified source names) and applies
  // ORDER BY.
  const auto finalize = [&query](storage::Table table) -> storage::Table {
    const bool has_star =
        std::any_of(query.select.begin(), query.select.end(),
                    [](const sql::BoundSelectItem& item) {
                      return item.kind == sql::BoundSelectItem::Kind::kStar;
                    });
    if (!has_star && table.schema().num_columns() == query.select.size()) {
      std::vector<storage::SchemaColumn> cols = table.schema().columns();
      for (size_t s = 0; s < query.select.size(); ++s) {
        cols[s].name = query.select[s].output_name;
        cols[s].table.clear();
      }
      table = storage::Table(storage::Schema(std::move(cols)),
                             std::move(table.mutable_rows()));
    }
    if (query.order_by.empty()) return table;
    std::stable_sort(table.mutable_rows().begin(), table.mutable_rows().end(),
                     [&query](const Row& a, const Row& b) {
                       for (const sql::BoundOrderItem& key : query.order_by) {
                         const int cmp =
                             a[key.output_column].Compare(b[key.output_column]);
                         if (cmp != 0) return key.ascending ? cmp < 0 : cmp > 0;
                       }
                       return false;
                     });
    return table;
  };

  if (query.HasAggregates()) {
    std::vector<size_t> group_cols;
    for (const sql::BoundColumnRef& ref : query.group_by) {
      group_cols.push_back(position(ref));
    }
    std::vector<storage::AggSpec> aggs;
    std::vector<size_t> select_to_output(query.select.size());
    for (size_t s = 0; s < query.select.size(); ++s) {
      const sql::BoundSelectItem& item = query.select[s];
      if (item.kind == sql::BoundSelectItem::Kind::kAggregate) {
        storage::AggSpec spec;
        spec.func = item.agg;
        spec.count_star = item.agg_star;
        if (!item.agg_star) spec.column = position(item.column);
        spec.output_name = item.output_name;
        select_to_output[s] = group_cols.size() + aggs.size();
        aggs.push_back(spec);
      } else if (item.kind == sql::BoundSelectItem::Kind::kColumn) {
        const size_t pos = position(item.column);
        size_t idx = group_cols.size();
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g] == pos) idx = g;
        }
        if (idx == group_cols.size()) {
          return Status::InvalidArgument("selected column '" +
                                         item.output_name +
                                         "' is not a grouping column");
        }
        select_to_output[s] = idx;
      } else {
        return Status::NotSupported("SELECT * cannot mix with aggregates");
      }
    }
    // The aggregate is the columnar pipeline's sink: group keys need whole
    // rows anyway, and the grouped output is small.
    const storage::Table current_table(storage::Schema(placed_cols),
                                       RowsFromColumns(current));
    const storage::Table grouped =
        storage::GroupAggregate(current_table, group_cols, aggs);
    // Reorder to the SELECT-list order.
    return finalize(storage::Project(grouped, select_to_output));
  }

  // Plain projection. `SELECT *` expands to all columns of all relations in
  // FROM order.
  std::vector<size_t> out_cols;
  for (const sql::BoundSelectItem& item : query.select) {
    if (item.kind == sql::BoundSelectItem::Kind::kStar) {
      for (size_t rel = 0; rel < n; ++rel) {
        const size_t arity = query.relations[rel].def->columns.size();
        for (size_t c = 0; c < arity; ++c) {
          out_cols.push_back(offsets[rel] + c);
        }
      }
    } else {
      out_cols.push_back(position(item.column));
    }
  }
  // Project while still columnar; rows materialize only for the final
  // result table.
  std::vector<storage::SchemaColumn> proj_cols;
  proj_cols.reserve(out_cols.size());
  for (const size_t c : out_cols) proj_cols.push_back(placed_cols[c]);
  return finalize(
      storage::Table(storage::Schema(std::move(proj_cols)),
                     RowsFromColumns(ProjectColumns(current, out_cols))));
}

}  // namespace payless::exec
