// Plan execution (Fig. 3, steps 4-9): walks a left-deep plan, issues the
// (remainder-rewritten) REST calls through the market connector, reuses
// stored tuples from the semantic store, computes bind-join binding values
// from the running join, and offloads the final join/aggregation to the
// local engine.
#ifndef PAYLESS_EXEC_EXECUTION_ENGINE_H_
#define PAYLESS_EXEC_EXECUTION_ENGINE_H_

#include <cstdint>
#include <limits>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "core/plan.h"
#include "exec/block.h"
#include "market/data_market.h"
#include "semstore/semantic_store.h"
#include "sql/bound_query.h"
#include "stats/estimator.h"
#include "storage/database.h"

namespace payless::federation {
class EndpointRouter;
}  // namespace payless::federation

namespace payless::exec {

struct ExecConfig {
  /// Rewrite accesses against the semantic store at execution time. Must
  /// match the optimizer's setting for faithful cost behaviour.
  bool use_sqr = true;
  /// Consistency horizon for reusing stored views (§4.3).
  int64_t min_epoch = std::numeric_limits<int64_t>::min();
  semstore::RemainderOptions remainder;
  /// Fan-out for one access's REST calls: a bind join's per-binding-value
  /// calls and an access's remainder calls are dispatched up to this many
  /// at a time (0 = default: 16 with the call scheduler, else hardware
  /// concurrency; 1 = strictly serial). Results are merged in
  /// binding-value / remainder-box order, so rows, row order and billed
  /// transactions are identical to serial execution.
  size_t max_parallel_calls = 0;
  /// Dispatch multi-call accesses through the connector's event-loop
  /// CallScheduler instead of thread-per-call ParallelFor: the fan-out
  /// becomes an in-flight window (cheap even in the hundreds) rather than
  /// a thread count. Serial accesses (fan-out 1) always bypass it.
  bool use_call_scheduler = true;
  /// Absolute per-query deadline forwarded to every market call. Calls
  /// past it fail with kDeadlineExceeded instead of retrying.
  market::Clock::time_point deadline = market::kNoDeadline;
  /// Observability context: (tenant, query_id) ledger attribution for every
  /// billed transaction, plus the trace the per-access and per-call spans
  /// land in (`obs.parent_span` is the caller's enclosing span — PayLess
  /// sets it to its "execute" span). Default-constructed = inert.
  market::CallObs obs;
};

struct ExecStats {
  int64_t calls = 0;
  int64_t transactions = 0;
  int64_t rows_from_market = 0;
  int64_t rows_from_cache = 0;
  /// Parallel sibling calls skipped unissued because another call of the
  /// same access exhausted its retries (fail-fast: no money is spent on a
  /// result that can no longer be delivered).
  int64_t calls_cancelled = 0;
};

class ExecutionEngine {
 public:
  /// `pool` (optional) enables parallel call dispatch; nullptr keeps every
  /// access strictly serial regardless of ExecConfig::max_parallel_calls.
  ExecutionEngine(const catalog::Catalog* catalog, storage::Database* local_db,
                  market::MarketConnector* connector,
                  semstore::SemanticStore* store, stats::StatsRegistry* stats,
                  common::ThreadPool* pool = nullptr)
      : catalog_(catalog),
        local_db_(local_db),
        connector_(connector),
        store_(store),
        stats_(stats),
        pool_(pool) {}

  /// Attaches a multi-market router (nullable; nullptr = single-market).
  /// With a router, each access's calls start at the connector of its
  /// `buy_site` annotation, and when that endpoint dies mid-access (breaker
  /// open, retries exhausted) the calls that delivered nothing there are
  /// re-issued at the next-cheapest live endpoint. Calls that DID deliver
  /// stay billed where they ran — failover never buys a row twice.
  void SetRouter(federation::EndpointRouter* router) { router_ = router; }

  /// Executes `plan` for `query`; returns the final result table. Market
  /// spend accrues on the connector's billing meter; `exec_stats` (optional)
  /// receives per-query counters.
  Result<storage::Table> Execute(const sql::BoundQuery& query,
                                 const core::Plan& plan,
                                 const ExecConfig& config,
                                 ExecStats* exec_stats = nullptr);

 private:
  /// Retrieves the rows for one access, spending money as needed.
  /// `access_index` is the access's position in the plan; it tags the
  /// access span so EXPLAIN ANALYZE can join actuals back onto the plan.
  Result<storage::Table> FetchRelation(const sql::BoundQuery& query,
                                       const core::AccessSpec& access,
                                       size_t access_index,
                                       const ColumnTable& left_result,
                                       const std::vector<size_t>& offsets,
                                       const ExecConfig& config,
                                       ExecStats* exec_stats);

  const catalog::Catalog* catalog_;
  storage::Database* local_db_;
  market::MarketConnector* connector_;
  semstore::SemanticStore* store_;
  stats::StatsRegistry* stats_;
  common::ThreadPool* pool_;
  federation::EndpointRouter* router_ = nullptr;  // nullable
};

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_EXECUTION_ENGINE_H_
