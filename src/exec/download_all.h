// The "Download All" strategy (§5): on the first query touching a market
// table, buy the ENTIRE table; afterwards everything is free local
// processing. Optimal when the workload will eventually scan whole
// datasets, ruinous when users walk away after a handful of selective
// queries — the trade-off Fig. 10 quantifies.
#ifndef PAYLESS_EXEC_DOWNLOAD_ALL_H_
#define PAYLESS_EXEC_DOWNLOAD_ALL_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "market/data_market.h"
#include "obs/cost_ledger.h"
#include "storage/database.h"

namespace payless::exec {

class DownloadAllClient {
 public:
  DownloadAllClient(const catalog::Catalog* catalog,
                    const market::DataMarket* market)
      : catalog_(catalog), connector_(market) {}

  DownloadAllClient(const DownloadAllClient&) = delete;
  DownloadAllClient& operator=(const DownloadAllClient&) = delete;

  /// Runs one query: downloads any not-yet-owned market table it touches
  /// (in full), then evaluates locally.
  Result<storage::Table> Query(const std::string& sql,
                               const std::vector<Value>& params = {});

  Status LoadLocalTable(const std::string& name, const std::vector<Row>& rows);

  /// Downloads one market table in full (idempotent). For tables with bound
  /// attributes the download iterates the bound attributes' domains, since
  /// no single unconstrained call is legal.
  Status EnsureDownloaded(const std::string& table);

  const market::BillingMeter& meter() const { return connector_.meter(); }
  storage::Database* local_db() { return &db_; }
  /// The client's connector — for installing a RetryPolicy or attaching a
  /// FaultInjector (chaos tests, flaky-market benchmarks).
  market::MarketConnector* connector() { return &connector_; }

  /// Attributes every downloaded table's spend to `tenant` in `ledger`
  /// (under the reserved query_id 0: download-all buys tables, not queries).
  /// Lets head-to-head comparisons with PayLess share one cost ledger.
  void AttributeSpendTo(obs::CostLedger* ledger, std::string tenant) {
    ledger_ = ledger;
    tenant_ = std::move(tenant);
  }

 private:
  const catalog::Catalog* catalog_;
  market::MarketConnector connector_;
  storage::Database db_;
  std::set<std::string> downloaded_;
  obs::CostLedger* ledger_ = nullptr;
  std::string tenant_ = "default";
};

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_DOWNLOAD_ALL_H_
