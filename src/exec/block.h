// Block-vectorized columnar kernel for buyer-side local evaluation.
//
// The row-at-a-time pipeline materialized every intermediate tuple as its
// own heap-allocated Row — one vector allocation (plus per-Value copies
// scattered across the heap) per joined row, per filtered row, per
// projected row. At high client counts that allocation traffic, not the
// market calls, dominated the local share of query latency.
//
// This kernel instead threads fixed-capacity blocks of column vectors
// through filter -> join -> project:
//
//   - a ColumnTable is a sequence of Blocks; each Block holds one
//     std::vector<Value> per column, at most kBlockCapacity rows;
//   - filters evaluate one predicate column at a time over a selection
//     vector and compact it (the classic vectorized-scan idiom), touching
//     only the columns a predicate mentions;
//   - joins collect matching (left row, right row) index pairs and then
//     gather the output column by column — no per-output-row allocation;
//   - projection is a column gather.
//
// Everything is order-preserving and reproduces the row engine's results
// byte-for-byte: BlockHashJoin emits probe-order x build-insertion-order
// exactly like storage::HashJoin (including its build-on-smaller-side
// choice and NULL-key skipping), so result rows, row order, and every
// downstream aggregate are identical to the row-at-a-time path.
#ifndef PAYLESS_EXEC_BLOCK_H_
#define PAYLESS_EXEC_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "storage/table.h"

namespace payless::exec {

inline constexpr size_t kBlockShift = 10;
inline constexpr size_t kBlockCapacity = size_t{1} << kBlockShift;  // 1024
inline constexpr size_t kBlockMask = kBlockCapacity - 1;

/// One fixed-capacity batch of rows in columnar layout: `columns[c][i]` is
/// row i's value of column c; every column holds exactly `num_rows` values.
struct Block {
  explicit Block(size_t num_columns) : columns(num_columns) {}
  std::vector<std::vector<Value>> columns;
  size_t num_rows = 0;
};

/// A columnar table: fixed width, rows split across full kBlockCapacity
/// blocks (only the last block may be partial, so global row index i lives
/// at block i >> kBlockShift, offset i & kBlockMask). Supports the
/// zero-column table — the join pipeline's unit element still counts rows.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(size_t num_columns) : num_columns_(num_columns) {}

  size_t num_columns() const { return num_columns_; }
  size_t num_rows() const { return num_rows_; }

  const Value& At(size_t row, size_t col) const {
    return blocks_[row >> kBlockShift].columns[col][row & kBlockMask];
  }
  Value& At(size_t row, size_t col) {
    return blocks_[row >> kBlockShift].columns[col][row & kBlockMask];
  }

  /// Appends `additional` default-constructed (NULL) rows; the caller fills
  /// them through At(). This is the gather-write primitive: grow once per
  /// output batch, then write column by column.
  void Grow(size_t additional);

  const std::vector<Block>& blocks() const { return blocks_; }

 private:
  size_t num_columns_ = 0;
  size_t num_rows_ = 0;
  std::vector<Block> blocks_;
};

/// Row-major -> columnar (block at a time).
ColumnTable ColumnsFromRows(const std::vector<Row>& rows, size_t num_columns);

/// Columnar -> row-major, preserving order.
std::vector<Row> RowsFromColumns(const ColumnTable& table);

/// Hash join on `keys` (left column, right column) pairs. Build side,
/// NULL-key handling, and output order are byte-identical to
/// storage::HashJoin; with empty keys it degenerates to BlockCartesian.
/// Output width = left width + right width.
ColumnTable BlockHashJoin(const ColumnTable& left, const ColumnTable& right,
                          const std::vector<std::pair<size_t, size_t>>& keys);

/// Cross product, left-major order (matches storage::Cartesian).
ColumnTable BlockCartesian(const ColumnTable& left, const ColumnTable& right);

/// Column gather: output column j is input column `columns[j]`.
ColumnTable ProjectColumns(const ColumnTable& table,
                           const std::vector<size_t>& columns);

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_BLOCK_H_
