#include "exec/download_all.h"

#include <unordered_set>

#include "exec/local_eval.h"
#include "market/rest_call.h"
#include "sql/parser.h"

namespace payless::exec {

Status DownloadAllClient::EnsureDownloaded(const std::string& table) {
  if (downloaded_.count(table) > 0) return Status::OK();
  const catalog::TableDef* def = catalog_->FindTable(table);
  if (def == nullptr) return Status::NotFound("unknown table '" + table + "'");
  if (def->is_local) return Status::OK();

  PAYLESS_RETURN_IF_ERROR(db_.CreateTable(*def));
  const std::vector<size_t> bound = def->BoundColumns();

  std::vector<market::RestCall> calls;
  if (bound.empty()) {
    calls.push_back(market::RestCall::Unconstrained(*def));
  } else {
    // Enumerate the bound attributes' domains. Numeric bound attributes
    // accept their whole domain as one explicit range; categorical bound
    // attributes need one call per value.
    calls.push_back(market::RestCall::Unconstrained(*def));
    for (const size_t col : bound) {
      const catalog::AttrDomain& domain = def->columns[col].domain;
      std::vector<market::RestCall> expanded;
      for (const market::RestCall& base : calls) {
        if (domain.is_numeric()) {
          const Interval range = domain.ToInterval();
          market::RestCall call = base;
          call.conditions[col] =
              market::AttrCondition::Range(range.lo, range.hi);
          expanded.push_back(std::move(call));
        } else {
          for (const std::string& value : domain.categories()) {
            market::RestCall call = base;
            call.conditions[col] = market::AttrCondition::Point(Value(value));
            expanded.push_back(std::move(call));
          }
        }
      }
      calls = std::move(expanded);
    }
  }

  // Resume-safe: a prior attempt may have inserted a prefix of the calls'
  // rows before failing mid-download (the table is only marked `downloaded_`
  // after the LAST call lands). Hosted datasets are sets, so row content is
  // identity — seed a dedupe set with whatever is already mirrored and skip
  // re-inserting it, making a retried download idempotent while still
  // keeping every successfully fetched page across attempts.
  std::unordered_set<Row, RowHasher> have;
  if (const storage::Table* existing = db_.FindTable(table)) {
    for (const Row& row : existing->rows()) have.insert(row);
  }

  market::CallObs call_obs;
  call_obs.tenant = tenant_;
  call_obs.query_id = 0;  // table purchase, not attributable to one query
  call_obs.ledger = ledger_;
  for (const market::RestCall& call : calls) {
    Result<market::CallResult> result =
        connector_.Get(call, market::kNoDeadline, &call_obs);
    PAYLESS_RETURN_IF_ERROR(result.status());
    std::vector<Row> fresh;
    fresh.reserve(result->rows.size());
    for (Row& row : result->rows) {
      if (have.insert(row).second) fresh.push_back(std::move(row));
    }
    PAYLESS_RETURN_IF_ERROR(db_.InsertRows(table, fresh));
  }
  downloaded_.insert(table);
  return Status::OK();
}

Status DownloadAllClient::LoadLocalTable(const std::string& name,
                                         const std::vector<Row>& rows) {
  const catalog::TableDef* def = catalog_->FindTable(name);
  if (def == nullptr) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  PAYLESS_RETURN_IF_ERROR(db_.CreateTable(*def));
  return db_.InsertRows(name, rows);
}

Result<storage::Table> DownloadAllClient::Query(
    const std::string& sql, const std::vector<Value>& params) {
  Result<sql::SelectStmt> stmt = sql::Parse(sql);
  PAYLESS_RETURN_IF_ERROR(stmt.status());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, *catalog_, params);
  PAYLESS_RETURN_IF_ERROR(bound.status());

  std::vector<storage::Table> rel_tables;
  for (const sql::BoundRelation& rel : bound->relations) {
    if (rel.is_market()) {
      PAYLESS_RETURN_IF_ERROR(EnsureDownloaded(rel.def->name));
      // Local processing over the downloaded copy. The hosted data is
      // byte-identical to what was downloaded (datasets are append-only and
      // EnsureDownloaded is the only fetch path), so the market's indexes
      // stand in for local ones: evaluate the relation's conditions through
      // an UNBILLED index lookup rather than a full local scan.
      market::RestCall call;
      call.table = rel.def->name;
      call.conditions = rel.conditions;
      if (!rel.always_empty && call.Validate(*rel.def).ok()) {
        Result<market::CallResult> subset =
            connector_.market().Execute(call);  // no billing: owned data
        PAYLESS_RETURN_IF_ERROR(subset.status());
        storage::Table table(storage::SchemaFromTableDef(*rel.def));
        for (Row& row : subset->rows) table.Append(std::move(row));
        rel_tables.push_back(std::move(table));
        continue;
      }
    }
    const storage::Table* table = db_.FindTable(rel.def->name);
    if (table == nullptr) {
      return Status::NotFound("table '" + rel.def->name + "' has no data");
    }
    rel_tables.push_back(*table);
  }
  return EvaluateLocally(*bound, rel_tables);
}

}  // namespace payless::exec
