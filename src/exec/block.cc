#include "exec/block.h"

#include <unordered_map>

namespace payless::exec {

void ColumnTable::Grow(size_t additional) {
  const size_t target = num_rows_ + additional;
  while (num_rows_ < target) {
    if (blocks_.empty() || blocks_.back().num_rows == kBlockCapacity) {
      blocks_.emplace_back(num_columns_);
    }
    Block& block = blocks_.back();
    const size_t add =
        std::min(kBlockCapacity - block.num_rows, target - num_rows_);
    for (std::vector<Value>& column : block.columns) {
      column.resize(block.num_rows + add);
    }
    block.num_rows += add;
    num_rows_ += add;
  }
}

ColumnTable ColumnsFromRows(const std::vector<Row>& rows,
                            size_t num_columns) {
  ColumnTable out(num_columns);
  out.Grow(rows.size());
  for (size_t c = 0; c < num_columns; ++c) {
    for (size_t i = 0; i < rows.size(); ++i) out.At(i, c) = rows[i][c];
  }
  return out;
}

std::vector<Row> RowsFromColumns(const ColumnTable& table) {
  std::vector<Row> rows(table.num_rows());
  size_t base = 0;
  for (const Block& block : table.blocks()) {
    for (size_t i = 0; i < block.num_rows; ++i) {
      rows[base + i].reserve(table.num_columns());
    }
    for (const std::vector<Value>& column : block.columns) {
      for (size_t i = 0; i < block.num_rows; ++i) {
        rows[base + i].push_back(column[i]);
      }
    }
    base += block.num_rows;
  }
  return rows;
}

namespace {

/// Gathers (left row, right row) index pairs into a fresh (left ++ right)
/// wide table, one output column at a time.
ColumnTable GatherPairs(const ColumnTable& left, const ColumnTable& right,
                        const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  const size_t lw = left.num_columns();
  const size_t rw = right.num_columns();
  ColumnTable out(lw + rw);
  out.Grow(pairs.size());
  for (size_t c = 0; c < lw; ++c) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      out.At(i, c) = left.At(pairs[i].first, c);
    }
  }
  for (size_t c = 0; c < rw; ++c) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      out.At(i, lw + c) = right.At(pairs[i].second, c);
    }
  }
  return out;
}

}  // namespace

ColumnTable BlockHashJoin(const ColumnTable& left, const ColumnTable& right,
                          const std::vector<std::pair<size_t, size_t>>& keys) {
  if (keys.empty()) return BlockCartesian(left, right);

  // Build on the smaller side; probe with the larger (as the row engine).
  const bool build_left = left.num_rows() <= right.num_rows();
  const ColumnTable& build = build_left ? left : right;
  const ColumnTable& probe = build_left ? right : left;

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (keys.size() == 1) {
    // Single-column key (the overwhelmingly common case): hash the Value
    // directly instead of materializing a one-element Row per input row.
    const size_t build_col = build_left ? keys[0].first : keys[0].second;
    const size_t probe_col = build_left ? keys[0].second : keys[0].first;
    std::unordered_map<Value, std::vector<uint32_t>, ValueHasher> hash_table;
    for (size_t i = 0; i < build.num_rows(); ++i) {
      const Value& key = build.At(i, build_col);
      if (key.is_null()) continue;
      hash_table[key].push_back(static_cast<uint32_t>(i));
    }
    for (size_t p = 0; p < probe.num_rows(); ++p) {
      const Value& key = probe.At(p, probe_col);
      if (key.is_null()) continue;
      const auto it = hash_table.find(key);
      if (it == hash_table.end()) continue;
      for (const uint32_t b : it->second) {
        const uint32_t l = build_left ? b : static_cast<uint32_t>(p);
        const uint32_t r = build_left ? static_cast<uint32_t>(p) : b;
        pairs.emplace_back(l, r);
      }
    }
    return GatherPairs(left, right, pairs);
  }

  const auto key_of = [&keys](const ColumnTable& table, size_t row,
                              bool from_left) {
    Row key;
    key.reserve(keys.size());
    for (const auto& [lc, rc] : keys) {
      key.push_back(table.At(row, from_left ? lc : rc));
    }
    return key;
  };
  const auto has_null = [](const Row& key) {
    for (const Value& v : key) {
      if (v.is_null()) return true;
    }
    return false;
  };

  std::unordered_map<Row, std::vector<uint32_t>, RowHasher> hash_table;
  for (size_t i = 0; i < build.num_rows(); ++i) {
    Row key = key_of(build, i, build_left);
    if (has_null(key)) continue;
    hash_table[std::move(key)].push_back(static_cast<uint32_t>(i));
  }

  // Probe in row order, emit matches in build-insertion order: exactly the
  // row engine's output order.
  for (size_t p = 0; p < probe.num_rows(); ++p) {
    Row key = key_of(probe, p, !build_left);
    if (has_null(key)) continue;
    const auto it = hash_table.find(key);
    if (it == hash_table.end()) continue;
    for (const uint32_t b : it->second) {
      const uint32_t l = build_left ? b : static_cast<uint32_t>(p);
      const uint32_t r = build_left ? static_cast<uint32_t>(p) : b;
      pairs.emplace_back(l, r);
    }
  }
  return GatherPairs(left, right, pairs);
}

ColumnTable BlockCartesian(const ColumnTable& left, const ColumnTable& right) {
  const size_t lw = left.num_columns();
  const size_t rw = right.num_columns();
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  ColumnTable out(lw + rw);
  out.Grow(ln * rn);
  for (size_t c = 0; c < lw; ++c) {
    size_t o = 0;
    for (size_t i = 0; i < ln; ++i) {
      const Value& v = left.At(i, c);
      for (size_t j = 0; j < rn; ++j) out.At(o++, c) = v;
    }
  }
  for (size_t c = 0; c < rw; ++c) {
    size_t o = 0;
    for (size_t i = 0; i < ln; ++i) {
      for (size_t j = 0; j < rn; ++j) out.At(o++, lw + c) = right.At(j, c);
    }
  }
  return out;
}

ColumnTable ProjectColumns(const ColumnTable& table,
                           const std::vector<size_t>& columns) {
  ColumnTable out(columns.size());
  out.Grow(table.num_rows());
  for (size_t c = 0; c < columns.size(); ++c) {
    for (size_t i = 0; i < table.num_rows(); ++i) {
      out.At(i, c) = table.At(i, columns[c]);
    }
  }
  return out;
}

}  // namespace payless::exec
