// The PayLess system facade (Fig. 2 / Fig. 3): one instance per data buyer.
//
// Wires together the parser, the learning optimizer, the execution engine,
// the semantic store, the feedback statistics and the market connector, and
// exposes the SQL interface end users see. Construction registers the
// connector listener that implements steps 5.3 (store every call + result)
// and 5.4 (statistics feedback) automatically, so the learning loop is
// always closed.
#ifndef PAYLESS_EXEC_PAYLESS_H_
#define PAYLESS_EXEC_PAYLESS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "core/plan_cache.h"
#include "durability/durability.h"
#include "exec/execution_engine.h"
#include "federation/endpoint_router.h"
#include "federation/market_endpoint.h"
#include "federation/placement.h"
#include "market/data_market.h"
#include "obs/accuracy.h"
#include "obs/http_exposition.h"
#include "obs/observability.h"
#include "obs/savings_accountant.h"
#include "obs/timeseries.h"
#include "obs/workload_journal.h"
#include "semstore/semantic_store.h"
#include "sql/bound_query.h"
#include "stats/estimator.h"
#include "storage/database.h"

namespace payless::exec {

/// Result-freshness policy (§4.3). Datasets in Azure Marketplace are
/// append-only, so kWeak is the paper's default; the others matter once
/// in-place updates exist.
enum class ConsistencyLevel {
  kWeak,   // reuse every stored result
  kXWeek,  // reuse results retrieved within the last X weeks
  kFull,   // never reuse: always go to the market
};

struct PayLessConfig {
  core::OptimizerOptions optimizer;
  ConsistencyLevel consistency = ConsistencyLevel::kWeak;
  int64_t consistency_weeks = 4;  // the X of kXWeek
  /// Which updatable statistic backs the learning optimizer (§3): the
  /// multidimensional feedback histogram (ISOMER role, default), the
  /// per-dimension independent histograms, or frozen uniform estimates.
  stats::StatsKind stats_kind = stats::StatsKind::kFeedbackHistogram;
  /// Fan-out for one access's REST calls: a bind join's per-binding-value
  /// calls (and remainder calls) go out up to this many at a time, merged
  /// deterministically in binding-value order. 0 = hardware concurrency,
  /// 1 = strictly serial. Rows and billing are identical either way.
  size_t max_parallel_calls = 0;
  /// Dispatch multi-call accesses through the connector's event-loop
  /// CallScheduler (timers instead of parked threads); fan-out then caps
  /// the in-flight window, not a thread count. Billing and row order are
  /// identical either way.
  bool enable_call_scheduler = true;
  /// Reuse plans of repeated identical parameterized queries (skips the DP
  /// entirely). Invalidation is drift-based: the accuracy tracker's epoch
  /// is part of the key, so templates only re-optimize when an estimate
  /// was materially wrong (see qerror_invalidation_threshold).
  bool enable_plan_cache = true;
  /// Record (estimated, actual) pairs at the feedback point into per-table
  /// q-error histograms and stats-quality gauges. Also powers the plan
  /// cache's drift invalidation — with tracking off, the drift epoch never
  /// moves and cached templates live until the consistency horizon shifts.
  bool enable_accuracy_tracking = true;
  /// A recorded q-error above this threshold ticks the drift epoch and
  /// invalidates every cached plan template (they were priced with
  /// statistics that have since been materially corrected). <= 0 disables
  /// drift invalidation entirely.
  double qerror_invalidation_threshold = 2.0;
  /// Resilience policy of the market connector: retries with capped
  /// exponential backoff + jitter, per-call timeout, per-dataset circuit
  /// breaker. Inert against a fault-free market.
  market::RetryPolicy retry;
  /// Per-query wall-clock budget (0 = unbounded). Market calls past the
  /// budget fail with kDeadlineExceeded; the query surfaces the error plus
  /// its spend-so-far in the QueryReport.
  int64_t query_deadline_micros = 0;
  /// Tenant this client spends on behalf of: every billed transaction is
  /// attributed to it in the cost ledger, and the budget governor admits or
  /// rejects queries against its budget.
  std::string tenant = "default";
  /// Shared observability context (metrics + ledger + governor + trace
  /// sink), typically ONE per deployment so all tenants report into the
  /// same ledger. nullptr = the client creates a private context; spend
  /// attribution and metrics still work, they are just per-client.
  obs::Observability* observability = nullptr;
  /// Collect per-query trace spans (parse → optimize → execute → per-access
  /// → per-market-call) into QueryReport::trace and the context's sink.
  /// Metrics and ledger attribution are always on — they are the cheap part.
  bool enable_tracing = true;
  /// Persistence + crash recovery (off when `durability.dir` is empty).
  /// With a directory set, construction first RECOVERS — snapshot + log
  /// replay rebuild the semantic store, the feedback histograms, the plan
  /// templates, the drift epoch and the store week — and every subsequent
  /// harvest is logged at the billing point before it is applied, so a
  /// process death never re-buys a durable slab.
  durability::DurabilityOptions durability;
  /// Price every query's counterfactual (store-less, uncached) plan and
  /// attribute the realized savings into the savings ledger and metrics.
  /// The what-if pass reuses the optimizer on the live statistics against
  /// an empty store — no market calls, no billing, no store mutation — and
  /// its result is cached inside the plan template, so steady-state
  /// serving prices the counterfactual once per template, not per query.
  bool enable_savings_accounting = true;
  /// Multi-market federation (nullable; must outlive the client). When
  /// set, the client owns one connector per endpoint: the optimizer picks
  /// each access's buy-site against the per-endpoint menus, execution
  /// routes calls there and fails over to the next-cheapest live endpoint
  /// when a breaker opens mid-query, and the savings counterfactual
  /// becomes the cheapest SINGLE-market plan (the federation's edge over
  /// any one endpoint is attributed under the federation_routing cause).
  /// The `market` constructor argument is then only the fallback for
  /// non-query surfaces; all query spend flows through the endpoint
  /// connectors.
  federation::FederatedMarket* federation = nullptr;
  /// Retained-slab budget for the semantic store (approx payload bytes);
  /// 0 = unbounded, the placement policy observes but never evicts.
  int64_t placement_capacity_bytes = 0;
  /// Background placement cadence; 0 = manual (placement()->Tick()).
  int64_t placement_tick_interval_micros = 0;
  /// Keep the always-on flight recorder fed: every completed query writes a
  /// compact trace entry (status, latency, stage decomposition, span
  /// summary) into the observability context's fixed ring, and the
  /// scheduler records batch events next to them. Independent of
  /// enable_tracing; costs one ring write per query.
  bool enable_flight_recorder = true;
  /// When non-empty: a failed query or a budget rejection dumps the flight
  /// recorder ring (JSON) to this path, and the ring is armed for the
  /// durability crash path so a hard crash dumps it too. Last writer wins
  /// when several clients share one path.
  std::string flight_recorder_dump_path;
  /// Per-endpoint market-RTT latency objective: every attempt's round trip
  /// is judged against `target_micros`, and /markets renders the rolling
  /// burn rate next to the endpoint's breaker states.
  obs::LatencySlo::Options latency_slo;
  /// Workload journal (nullable; must outlive the client). When set, every
  /// ADMITTED query — gate-1 pass, including gate-2 budget rejections and
  /// mid-flight failures — appends one record with its SQL, params, tenant,
  /// virtual arrival timestamp and outcome digest. One journal is shared by
  /// all tenant clients of a deployment, so the recorded stream interleaves
  /// tenants exactly as they arrived; the deployment advisor replays it.
  obs::WorkloadJournal* workload_journal = nullptr;
};

/// Everything a query returns besides the rows.
struct QueryReport {
  storage::Table result;
  core::Plan plan;
  /// Rendered plan text. Filled for EXPLAIN / EXPLAIN ANALYZE statements
  /// (the ANALYZE form includes per-access actuals and q-errors) and by
  /// Explain(); empty for plain queries — rendering is not free and most
  /// callers never look at it.
  std::string plan_text;
  core::PlanningCounters counters;
  ExecStats exec;
  int64_t transactions_spent = 0;  // this query's own billed transactions
  /// Per-dataset breakdown of `transactions_spent`, straight from the cost
  /// ledger — callers stop re-deriving spend from meter deltas.
  std::map<std::string, int64_t> transactions_by_dataset;
  /// Ledger/trace id of this query, unique within its PayLess instance.
  uint64_t query_id = 0;
  /// The query's spend crossed the tenant's soft budget threshold (the
  /// query still ran; only a hard cap rejects).
  bool budget_warning = false;
  /// Savings accounting (when enabled and the counterfactual priced):
  /// estimated transactions of the store-less, uncached baseline plan and
  /// the realized delta vs `transactions_spent`. -1 = not accounted.
  int64_t counterfactual_transactions = -1;
  int64_t savings_transactions = 0;
  /// End-to-end wall latency of this query in microseconds, and its
  /// decomposition by obs::QueryStage. The first obs::kNumWallStages
  /// entries partition `latency_us` (parse/plan, plan-cache probe, fetch,
  /// local eval, merge — small bookkeeping residue aside); the remaining
  /// entries (scheduler admission, market RTT, retry backoff) detail where
  /// the fetch stage went and may overlap each other under parallelism.
  int64_t latency_us = 0;
  int64_t stage_micros[obs::kNumQueryStages] = {};
  /// Structured per-query trace (empty when tracing is disabled): parse,
  /// optimize/plan-cache, execution, per-access and per-market-call spans
  /// with dataset, binding values, transactions and retry/waste attributes.
  std::vector<obs::SpanRecord> trace;
  /// kOk when the query delivered `result`. kUnavailable /
  /// kDeadlineExceeded / kResourceExhausted when execution failed
  /// mid-flight against a flaky market — `result` is then empty but
  /// `exec` / `transactions_spent` still hold the spend-so-far, and
  /// everything already delivered was absorbed by the semantic store, so a
  /// re-issued query does not pay for it again.
  Status error;

  bool ok() const { return error.ok(); }
};

/// One query of a deferred batch.
struct BatchQuery {
  std::string sql;
  std::vector<Value> params;
};

/// Outcome of batch processing.
struct BatchReport {
  std::vector<storage::Table> results;  // one per query, in input order
  int64_t transactions_spent = 0;
  /// Number of cross-query region groups whose market data was prefetched
  /// with merged calls (0 = batching found nothing to share).
  size_t merged_groups = 0;
  int64_t prefetch_transactions = 0;
  /// Prefetch calls skipped because the merged region is not expressible as
  /// one REST call (kBindingViolation / kNotSupported — e.g. a bound
  /// attribute left unconstrained, or a categorical multi-value sub-range).
  /// Expected and harmless: the per-query execution fetches those regions.
  size_t prefetch_skipped_calls = 0;
  /// Prefetch calls that failed against a flaky market (retries exhausted /
  /// deadline / rate limit) and were abandoned. Also harmless for
  /// correctness: prefetching is an optimization, the queries fall back to
  /// their own fetch paths.
  size_t prefetch_failed_calls = 0;
};

/// Thread-safety contract: Query / QueryWithReport / Explain may be called
/// concurrently from any number of client threads against one PayLess —
/// the market connector, billing meter, semantic store, statistics and plan
/// cache all synchronize internally, and per-query spend is counted from
/// the query's own calls (not a meter delta). Setup and administration —
/// LoadLocalTable, SetCurrentWeek, QueryBatch — are single-caller: run them
/// while no queries are in flight.
class PayLess {
 public:
  PayLess(const catalog::Catalog* catalog, const market::DataMarket* market,
          PayLessConfig config);

  PayLess(const PayLess&) = delete;
  PayLess& operator=(const PayLess&) = delete;

  /// Runs one parameterized SQL query end-to-end. Safe to call from many
  /// threads concurrently. Mid-flight market failures (retries exhausted,
  /// deadline, rate limit) surface as that error Status.
  Result<storage::Table> Query(const std::string& sql,
                               const std::vector<Value>& params = {});

  /// Like Query, with the plan, counters and spend attached. Parse, bind
  /// and optimize errors return a plain error Status; an EXECUTION failure
  /// against a flaky market instead returns an OK Result whose report has
  /// `error` set and carries the spend-so-far (so callers can account for
  /// money already billed before the failure).
  Result<QueryReport> QueryWithReport(const std::string& sql,
                                      const std::vector<Value>& params = {});

  /// Optimizes without executing: returns the would-be plan and its
  /// human-readable description (QueryReport::plan_text). Nothing is
  /// billed and nothing is cached — the buyer can inspect the estimated
  /// spend before committing. Also reached by the `EXPLAIN <query>`
  /// statement form; `EXPLAIN ANALYZE` instead goes through Query and DOES
  /// execute (and bill).
  Result<QueryReport> Explain(const std::string& sql,
                              const std::vector<Value>& params = {});

  /// The rendered EXPLAIN text for `sql` — plan, estimates, planning
  /// counters and statistics maturity. Never executes and never spends;
  /// this is what the HTTP exposition endpoint serves for /explain?q=.
  Result<std::string> ExplainText(const std::string& sql,
                                  const std::vector<Value>& params = {});

  /// Multi-query optimization (§7): processes a deferred batch jointly.
  /// The footprints of all queries on each market table are greedily merged
  /// whenever one merged download is estimated cheaper than the individual
  /// remainders (the per-page Eq. 1 rounding makes many small overlapping
  /// fetches costlier than one hull fetch); merged groups are prefetched
  /// into the semantic store, then the queries execute normally — and
  /// mostly for free. Falls back to plain sequential behaviour when merging
  /// never pays. Requires SQR to be enabled.
  Result<BatchReport> QueryBatch(const std::vector<BatchQuery>& batch);

  /// Loads rows into a buyer-side local table (must be declared local in
  /// the catalog).
  Status LoadLocalTable(const std::string& name, const std::vector<Row>& rows);

  /// Advances the wall clock (in weeks) used to stamp stored views and to
  /// compute the X-week consistency horizon.
  void SetCurrentWeek(int64_t week) {
    current_week_.store(week, std::memory_order_relaxed);
  }
  int64_t current_week() const {
    return current_week_.load(std::memory_order_relaxed);
  }

  const market::BillingMeter& meter() const { return connector_.meter(); }
  const semstore::SemanticStore& store() const { return store_; }
  const stats::StatsRegistry& stats() const { return stats_; }
  /// Estimator-accuracy telemetry (q-errors, drift epoch). Always present;
  /// it only accumulates samples while enable_accuracy_tracking is on.
  const obs::AccuracyTracker& accuracy() const { return accuracy_; }
  const core::PlanCache& plan_cache() const { return plan_cache_; }
  /// Durability manager; nullptr when durability is off. Non-const so
  /// tests/operators can force a snapshot (SnapshotNow).
  durability::DurabilityManager* durability() { return durability_.get(); }
  const durability::DurabilityManager* durability() const {
    return durability_.get();
  }
  market::MarketConnector* connector() { return &connector_; }
  /// Multi-market router; nullptr when no federation was configured.
  federation::EndpointRouter* router() { return router_.get(); }
  const federation::EndpointRouter* router() const { return router_.get(); }
  /// Slab placement policy; nullptr when neither a capacity budget nor a
  /// tick interval was configured.
  federation::PlacementPolicy* placement() { return placement_.get(); }
  storage::Database* local_db() { return &local_db_; }
  const catalog::Catalog& catalog() const { return *catalog_; }
  const PayLessConfig& config() const { return config_; }
  /// The observability context this client reports into (the shared one
  /// from the config, or the private default).
  obs::Observability* observability() { return obs_; }
  const obs::Observability& observability() const { return *obs_; }
  const std::string& tenant() const { return config_.tenant; }

  /// Wires this client's introspection surfaces onto an HTTP exposition
  /// server: /explain (plan text for arbitrary SQL), /savings (the savings
  /// ledger), /store (live semantic-store coverage), /markets (per-endpoint
  /// spend, breaker states, failovers and slab placement; answers
  /// {"federated":false} in single-market mode) and — when `sampler` is
  /// non-null — /timeseries. Call before server->Start(); the server must
  /// not outlive this client.
  void RegisterIntrospection(obs::HttpExpositionServer* server,
                             obs::TimeSeriesSampler* sampler = nullptr);

 private:
  int64_t MinEpoch() const;
  /// Steps 5.3/5.4 of Fig. 3 — the single point where a billed harvest
  /// becomes state (store + statistics feedback + accuracy tracking).
  /// Called by the connector listener for live calls and by the durability
  /// manager's recovery replay, so both paths rebuild identical state.
  void AbsorbHarvest(const catalog::TableDef& def, const Box& region,
                     std::vector<Row> rows, int64_t num_records,
                     int64_t epoch);
  /// The traced/governed body of QueryWithReport; `query_id` is already
  /// assigned and admission against the CURRENT spend already passed.
  Result<QueryReport> QueryWithReportImpl(const std::string& sql,
                                          const std::vector<Value>& params,
                                          uint64_t query_id);

  /// Handles into the metrics registry, resolved once at construction so
  /// the per-query path is pure atomic arithmetic.
  struct MetricHandles {
    obs::Counter* queries = nullptr;
    obs::Counter* query_failures = nullptr;
    obs::Counter* budget_rejections = nullptr;
    obs::Counter* budget_warnings = nullptr;
    obs::Counter* transactions = nullptr;
    obs::Counter* market_calls = nullptr;
    obs::Counter* rows_from_market = nullptr;
    obs::Counter* rows_from_cache = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* plan_cache_misses = nullptr;
    obs::Histogram* query_latency_micros = nullptr;
    /// HDR end-to-end latency + per-stage decomposition (tail-exact
    /// percentiles, recorded whether or not tracing is on).
    obs::LatencyHistogram* latency_e2e = nullptr;
    obs::LatencyHistogram* stage[obs::kNumQueryStages] = {};
    obs::Counter* store_hits = nullptr;       // bound into the store
    obs::Counter* store_misses = nullptr;     // (probe outcome counters)
    obs::Counter* store_evictions = nullptr;
    obs::Counter* counterfactual = nullptr;
    obs::Gauge* savings = nullptr;  // running net savings; can go negative
    obs::Gauge* savings_by_cause[obs::kNumSavingsCauses] = {};
  };

  const catalog::Catalog* catalog_;
  PayLessConfig config_;
  std::unique_ptr<obs::Observability> owned_obs_;  // when none was shared
  obs::Observability* obs_;
  MetricHandles metric_;
  obs::AccuracyTracker accuracy_;  // after obs_: constructed from it
  market::MarketConnector connector_;
  semstore::SemanticStore store_;
  stats::StatsRegistry stats_;
  core::PlanCache plan_cache_;
  /// Persistence + recovery; null when durability is off. After store_,
  /// stats_ and plan_cache_ (it holds raw pointers to all three).
  std::unique_ptr<durability::DurabilityManager> durability_;
  /// What-if pricer for savings accounting; null when disabled. After
  /// stats_ (it reads the live statistics through a raw pointer).
  std::unique_ptr<obs::SavingsAccountant> savings_accountant_;
  /// Per-endpoint connectors + routing; null in single-market mode.
  std::unique_ptr<federation::EndpointRouter> router_;
  /// Market-RTT latency objectives: one per endpoint (index-aligned with
  /// the router), or a single entry in single-market mode. Owned here —
  /// the registry owns histograms, SLO policy objects live with the client.
  std::vector<std::unique_ptr<obs::LatencySlo>> latency_slos_;
  /// Capacity-budget slab placement; null when not configured. Declared
  /// after store_/durability_/router_ so its background thread is joined
  /// before anything it reads is torn down.
  std::unique_ptr<federation::PlacementPolicy> placement_;
  storage::Database local_db_;
  std::atomic<int64_t> current_week_{0};
  std::atomic<uint64_t> next_query_id_{0};
};

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_PAYLESS_H_
