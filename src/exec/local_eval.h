// Buyer-side final query processing (Fig. 3, steps 6-8): once every
// relation's required tuples are available locally, the query is just a
// conventional select-join-aggregate evaluation. Shared by the execution
// engine, the Download-All baseline, and the reference oracle in tests.
#ifndef PAYLESS_EXEC_LOCAL_EVAL_H_
#define PAYLESS_EXEC_LOCAL_EVAL_H_

#include <vector>

#include "common/status.h"
#include "exec/block.h"
#include "sql/bound_query.h"
#include "storage/table.h"

namespace payless::exec {

/// Evaluates `query` over materialized relation contents. `rel_tables[i]`
/// holds (a superset of) the rows of relation i that satisfy the query; the
/// evaluator re-applies the relation's literal conditions and the residual
/// predicates, joins everything along the query's join edges (Cartesian
/// where disconnected), and produces the SELECT/GROUP BY output.
Result<storage::Table> EvaluateLocally(
    const sql::BoundQuery& query,
    const std::vector<storage::Table>& rel_tables);

/// Produces the SELECT / GROUP BY / ORDER BY output over an already-joined
/// columnar result. `current` is the join of every relation (filters and
/// residuals applied), `offsets[rel]` its relations' first column position,
/// `placed_cols` the concatenated schema in placement order. Lets the
/// execution engine finish its running bind join directly instead of
/// re-filtering and re-joining from scratch.
Result<storage::Table> EvaluateJoined(
    const sql::BoundQuery& query, const ColumnTable& current,
    const std::vector<size_t>& offsets,
    std::vector<storage::SchemaColumn> placed_cols);

/// Filters one relation's raw rows by its literal conditions and the
/// residual predicates that mention it.
storage::Table FilterRelation(const sql::BoundQuery& query, size_t rel,
                              const storage::Table& raw);

/// Block-vectorized form of FilterRelation: evaluates one predicate column
/// at a time over a selection vector (block by block, compacting as it
/// goes) and gathers survivors columnar. Same rows, same order.
ColumnTable FilterRelationColumns(const sql::BoundQuery& query, size_t rel,
                                  const storage::Table& raw);

}  // namespace payless::exec

#endif  // PAYLESS_EXEC_LOCAL_EVAL_H_
