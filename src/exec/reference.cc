#include "exec/reference.h"

#include <map>

#include "exec/local_eval.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace payless::exec {

Result<storage::Table> ReferenceEvaluate(const catalog::Catalog& catalog,
                                         const market::DataMarket& market,
                                         const storage::Database& local_db,
                                         const std::string& sql,
                                         const std::vector<Value>& params) {
  Result<sql::SelectStmt> stmt = sql::Parse(sql);
  PAYLESS_RETURN_IF_ERROR(stmt.status());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, catalog, params);
  PAYLESS_RETURN_IF_ERROR(bound.status());

  std::vector<storage::Table> rel_tables;
  for (const sql::BoundRelation& rel : bound->relations) {
    storage::Table table(storage::SchemaFromTableDef(*rel.def));
    if (rel.is_market()) {
      const std::vector<Row>* rows =
          market.HostedRowsForTesting(rel.def->name);
      if (rows == nullptr) {
        return Status::NotFound("table '" + rel.def->name + "' not hosted");
      }
      for (const Row& row : *rows) table.Append(row);
    } else {
      const storage::Table* local = local_db.FindTable(rel.def->name);
      if (local == nullptr) {
        return Status::NotFound("local table '" + rel.def->name +
                                "' has no data");
      }
      table = *local;
    }
    rel_tables.push_back(std::move(table));
  }
  return EvaluateLocally(*bound, rel_tables);
}

bool SameResult(const storage::Table& a, const storage::Table& b) {
  if (a.schema().num_columns() != b.schema().num_columns()) return false;
  if (a.num_rows() != b.num_rows()) return false;
  std::map<std::string, int64_t> counts;
  for (const Row& row : a.rows()) ++counts[RowToString(row)];
  for (const Row& row : b.rows()) {
    const auto it = counts.find(RowToString(row));
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

}  // namespace payless::exec
